#include "sweep/point.hpp"

#include <cmath>
#include <cstdlib>
#include <span>
#include <sstream>
#include <vector>

#include "common/sha256.hpp"

namespace warpcomp {

namespace {

std::string
boolToken(bool v)
{
    return v ? "1" : "0";
}

std::optional<bool>
parseBoolToken(const std::string &v)
{
    if (v == "1")
        return true;
    if (v == "0")
        return false;
    return std::nullopt;
}

std::optional<u64>
parseU64Token(const std::string &v)
{
    if (v.empty())
        return std::nullopt;
    for (char c : v)
        if (c < '0' || c > '9')
            return std::nullopt;
    char *end = nullptr;
    const u64 parsed = std::strtoull(v.c_str(), &end, 10);
    if (end != v.c_str() + v.size() || std::to_string(parsed) != v)
        return std::nullopt;
    return parsed;
}

std::optional<u32>
parseU32Token(const std::string &v)
{
    const auto parsed = parseU64Token(v);
    if (!parsed.has_value() || *parsed > 0xFFFFFFFFull)
        return std::nullopt;
    return static_cast<u32>(*parsed);
}

std::optional<double>
parseDoubleToken(const std::string &v)
{
    if (v.empty())
        return std::nullopt;
    char *end = nullptr;
    const double parsed = std::strtod(v.c_str(), &end);
    if (end != v.c_str() + v.size() || !std::isfinite(parsed))
        return std::nullopt;
    return parsed;
}

std::string
schedToken(SchedPolicy p)
{
    return p == SchedPolicy::Gto ? "Gto" : "Lrr";
}

std::optional<SchedPolicy>
schedFromToken(const std::string &v)
{
    if (v == "Gto")
        return SchedPolicy::Gto;
    if (v == "Lrr")
        return SchedPolicy::Lrr;
    return std::nullopt;
}

std::string
divToken(DivergencePolicy p)
{
    return p == DivergencePolicy::WriteUncompressed ? "WriteUncompressed"
                                                    : "MergeRecompress";
}

std::optional<DivergencePolicy>
divFromToken(const std::string &v)
{
    if (v == "WriteUncompressed")
        return DivergencePolicy::WriteUncompressed;
    if (v == "MergeRecompress")
        return DivergencePolicy::MergeRecompress;
    return std::nullopt;
}

} // namespace

std::string
configToSpec(const ExperimentConfig &cfg)
{
    std::ostringstream ss;
    ss << "scheme=" << schemeId(cfg.scheme)
       << ";sched=" << schedToken(cfg.sched)
       << ";div=" << divToken(cfg.divPolicy)
       << ";clat=" << cfg.compressLatency
       << ";dlat=" << cfg.decompressLatency
       << ";sms=" << cfg.numSms
       << ";scale=" << cfg.scale
       << ";bdi=" << boolToken(cfg.collectBdiBreakdown)
       << ";gating=" << boolToken(cfg.enableGating)
       << ";drowsy=" << boolToken(cfg.drowsy)
       << ";drowsyafter=" << cfg.drowsyAfterCycles
       << ";rfc=" << cfg.rfcEntries
       << ";wakeup=" << cfg.wakeupLatency
       << ";comps=" << cfg.numCompressors
       << ";decomps=" << cfg.numDecompressors
       << ";salt=" << cfg.seedSalt
       << ";fber=" << JsonWriter::formatDouble(cfg.faults.ber)
       << ";fpolicy=" << faultPolicyName(cfg.faults.policy)
       << ";fseed=" << cfg.faults.seed
       << ";hang=" << cfg.faults.hangCycles
       << ";seurate=" << JsonWriter::formatDouble(cfg.seu.flipsPerCycle)
       << ";seuscheme=" << seuSchemeName(cfg.seu.scheme)
       << ";seuseed=" << cfg.seu.seed
       << ";scrub=" << cfg.seu.scrubInterval
       << ";skip=" << boolToken(cfg.skipIdle);
    return ss.str();
}

std::optional<ExperimentConfig>
configFromSpec(const std::string &spec, std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error != nullptr)
            *error = msg;
        return std::nullopt;
    };

    ExperimentConfig cfg;
    size_t pos = 0;
    while (pos <= spec.size()) {
        const size_t semi = spec.find(';', pos);
        const std::string pair = spec.substr(
            pos, semi == std::string::npos ? std::string::npos : semi - pos);
        pos = semi == std::string::npos ? spec.size() + 1 : semi + 1;

        const size_t eq = pair.find('=');
        if (eq == std::string::npos)
            return fail("config pair `" + pair + "` has no '='");
        const std::string key = pair.substr(0, eq);
        const std::string val = pair.substr(eq + 1);
        bool ok = true;

        if (key == "scheme") {
            const auto v = schemeFromId(val);
            ok = v.has_value();
            if (ok)
                cfg.scheme = *v;
        } else if (key == "sched") {
            const auto v = schedFromToken(val);
            ok = v.has_value();
            if (ok)
                cfg.sched = *v;
        } else if (key == "div") {
            const auto v = divFromToken(val);
            ok = v.has_value();
            if (ok)
                cfg.divPolicy = *v;
        } else if (key == "clat") {
            const auto v = parseU32Token(val);
            ok = v.has_value();
            if (ok)
                cfg.compressLatency = *v;
        } else if (key == "dlat") {
            const auto v = parseU32Token(val);
            ok = v.has_value();
            if (ok)
                cfg.decompressLatency = *v;
        } else if (key == "sms") {
            const auto v = parseU32Token(val);
            ok = v.has_value() && *v >= 1;
            if (ok)
                cfg.numSms = *v;
        } else if (key == "scale") {
            const auto v = parseU32Token(val);
            ok = v.has_value() && *v >= 1;
            if (ok)
                cfg.scale = *v;
        } else if (key == "bdi") {
            const auto v = parseBoolToken(val);
            ok = v.has_value();
            if (ok)
                cfg.collectBdiBreakdown = *v;
        } else if (key == "gating") {
            const auto v = parseBoolToken(val);
            ok = v.has_value();
            if (ok)
                cfg.enableGating = *v;
        } else if (key == "drowsy") {
            const auto v = parseBoolToken(val);
            ok = v.has_value();
            if (ok)
                cfg.drowsy = *v;
        } else if (key == "drowsyafter") {
            const auto v = parseU32Token(val);
            ok = v.has_value();
            if (ok)
                cfg.drowsyAfterCycles = *v;
        } else if (key == "rfc") {
            const auto v = parseU32Token(val);
            ok = v.has_value();
            if (ok)
                cfg.rfcEntries = *v;
        } else if (key == "wakeup") {
            const auto v = parseU32Token(val);
            ok = v.has_value();
            if (ok)
                cfg.wakeupLatency = *v;
        } else if (key == "comps") {
            const auto v = parseU32Token(val);
            ok = v.has_value();
            if (ok)
                cfg.numCompressors = *v;
        } else if (key == "decomps") {
            const auto v = parseU32Token(val);
            ok = v.has_value();
            if (ok)
                cfg.numDecompressors = *v;
        } else if (key == "salt") {
            const auto v = parseU64Token(val);
            ok = v.has_value();
            if (ok)
                cfg.seedSalt = *v;
        } else if (key == "fber") {
            const auto v = parseDoubleToken(val);
            ok = v.has_value() && *v >= 0.0 && *v < 1.0;
            if (ok)
                cfg.faults.ber = *v;
        } else if (key == "fpolicy") {
            const auto v = faultPolicyFromName(val);
            ok = v.has_value();
            if (ok)
                cfg.faults.policy = *v;
        } else if (key == "fseed") {
            const auto v = parseU64Token(val);
            ok = v.has_value();
            if (ok)
                cfg.faults.seed = *v;
        } else if (key == "hang") {
            const auto v = parseU64Token(val);
            ok = v.has_value();
            if (ok)
                cfg.faults.hangCycles = *v;
        } else if (key == "seurate") {
            const auto v = parseDoubleToken(val);
            ok = v.has_value() && *v >= 0.0;
            if (ok)
                cfg.seu.flipsPerCycle = *v;
        } else if (key == "seuscheme") {
            const auto v = seuSchemeFromName(val);
            ok = v.has_value();
            if (ok)
                cfg.seu.scheme = *v;
        } else if (key == "seuseed") {
            const auto v = parseU64Token(val);
            ok = v.has_value();
            if (ok)
                cfg.seu.seed = *v;
        } else if (key == "scrub") {
            const auto v = parseU64Token(val);
            ok = v.has_value() && *v >= 1;
            if (ok)
                cfg.seu.scrubInterval = *v;
        } else if (key == "skip") {
            const auto v = parseBoolToken(val);
            ok = v.has_value();
            if (ok)
                cfg.skipIdle = *v;
        } else {
            return fail("unknown config key `" + key + "`");
        }
        if (!ok)
            return fail("bad value for config key `" + key + "`: `" +
                        val + "`");
    }
    return cfg;
}

std::optional<SweepPoint>
pointFromSpec(const std::string &spec, std::string *error)
{
    const size_t bar = spec.find('|');
    if (bar == std::string::npos || bar == 0) {
        if (error != nullptr)
            *error = "--point wants WORKLOAD|CONFIGSPEC, got `" + spec +
                     "`";
        return std::nullopt;
    }
    SweepPoint point;
    point.workload = spec.substr(0, bar);
    const auto cfg = configFromSpec(spec.substr(bar + 1), error);
    if (!cfg.has_value())
        return std::nullopt;
    point.cfg = *cfg;
    return point;
}

std::string
pointToSpec(const SweepPoint &point)
{
    return point.workload + "|" + configToSpec(point.cfg);
}

std::string
pointKey(const SweepPoint &point)
{
    const std::string material =
        configToSpec(point.cfg) + "\n" + point.workload;
    const std::string hex = sha256Hex(std::span<const u8>(
        reinterpret_cast<const u8 *>(material.data()), material.size()));
    return hex.substr(0, 16);
}

PointStats
makePointStats(const ExperimentResult &result, const EnergyParams &energy)
{
    PointStats s;
    const RunResult &run = result.run;
    s.cycles = run.cycles;
    s.ctas = run.ctas;
    s.hung = run.hung;
    s.unschedulable = run.unschedulable;
    s.energyPj = run.meter.breakdownWith(energy).totalPj();
    s.fault = run.fault;
    s.seu = run.seu;
    s.frontend = result.frontend;
    s.imageSha = result.imageSha;
    return s;
}

void
writeJson(JsonWriter &w, const PointStats &s)
{
    w.beginObject();
    w.field("cycles", s.cycles);
    w.field("ctas", s.ctas);
    w.field("hung", s.hung);
    w.field("unschedulable", s.unschedulable);
    w.field("energy_pj", s.energyPj);
    w.key("fault");
    w.beginObject();
    w.field("total_regs", s.fault.totalRegs);
    w.field("usable_regs", s.fault.usableRegs);
    w.field("disabled_regs", s.fault.disabledRegs);
    w.field("faulty_cells", s.fault.faultyCells);
    w.field("tolerated_writes", s.fault.toleratedWrites);
    w.field("remap_writes", s.fault.remapWrites);
    w.field("remap_reads", s.fault.remapReads);
    w.field("corrupted_writes", s.fault.corruptedWrites);
    w.field("unrecoverable_accesses", s.fault.unrecoverableAccesses);
    w.endObject();
    w.key("seu");
    w.beginObject();
    w.field("flips", s.seu.flips);
    w.field("live_hits", s.seu.liveHits);
    w.field("masked_flips", s.seu.maskedFlips);
    w.field("hits_compressed", s.seu.hitsCompressed);
    w.field("corrupted_reads", s.seu.corruptedReads);
    w.field("corrupted_lanes", s.seu.corruptedLanes);
    w.field("amplified_reads", s.seu.amplifiedReads);
    w.field("ecc_corrected", s.seu.eccCorrectedReads);
    w.field("detected_uncorrectable", s.seu.detectedUncorrectable);
    w.field("scrub_visits", s.seu.scrubVisits);
    w.field("scrub_writes", s.seu.scrubWrites);
    w.field("scrub_corrected", s.seu.scrubCorrected);
    w.field("ecc_check_bit_bytes", s.seu.eccCheckBitBytes);
    w.endObject();
    w.field("frontend", s.frontend);
    w.field("image_sha256", s.imageSha);
    w.endObject();
}

namespace {

bool
readU64Field(const JsonValue &v, const char *key, u64 *out,
             std::string *error)
{
    const JsonValue *f = v.find(key);
    const auto parsed = f != nullptr ? f->asU64() : std::nullopt;
    if (!parsed.has_value()) {
        if (error != nullptr)
            *error = std::string("missing or mistyped field `") + key +
                     "`";
        return false;
    }
    *out = *parsed;
    return true;
}

bool
readBoolField(const JsonValue &v, const char *key, bool *out,
              std::string *error)
{
    const JsonValue *f = v.find(key);
    const auto parsed = f != nullptr ? f->asBool() : std::nullopt;
    if (!parsed.has_value()) {
        if (error != nullptr)
            *error = std::string("missing or mistyped field `") + key +
                     "`";
        return false;
    }
    *out = *parsed;
    return true;
}

} // namespace

std::optional<PointStats>
pointStatsFromJson(const JsonValue &v, std::string *error)
{
    if (!v.isObject()) {
        if (error != nullptr)
            *error = "point stats is not an object";
        return std::nullopt;
    }
    PointStats s;
    if (!readU64Field(v, "cycles", &s.cycles, error) ||
        !readU64Field(v, "ctas", &s.ctas, error) ||
        !readBoolField(v, "hung", &s.hung, error) ||
        !readBoolField(v, "unschedulable", &s.unschedulable, error))
        return std::nullopt;
    const JsonValue *energy = v.find("energy_pj");
    const auto energy_v = energy != nullptr ? energy->asDouble()
                                            : std::nullopt;
    if (!energy_v.has_value()) {
        if (error != nullptr)
            *error = "missing or mistyped field `energy_pj`";
        return std::nullopt;
    }
    s.energyPj = *energy_v;

    const JsonValue *fault = v.find("fault");
    if (fault == nullptr || !fault->isObject()) {
        if (error != nullptr)
            *error = "missing `fault` object";
        return std::nullopt;
    }
    if (!readU64Field(*fault, "total_regs", &s.fault.totalRegs, error) ||
        !readU64Field(*fault, "usable_regs", &s.fault.usableRegs,
                      error) ||
        !readU64Field(*fault, "disabled_regs", &s.fault.disabledRegs,
                      error) ||
        !readU64Field(*fault, "faulty_cells", &s.fault.faultyCells,
                      error) ||
        !readU64Field(*fault, "tolerated_writes",
                      &s.fault.toleratedWrites, error) ||
        !readU64Field(*fault, "remap_writes", &s.fault.remapWrites,
                      error) ||
        !readU64Field(*fault, "remap_reads", &s.fault.remapReads,
                      error) ||
        !readU64Field(*fault, "corrupted_writes",
                      &s.fault.corruptedWrites, error) ||
        !readU64Field(*fault, "unrecoverable_accesses",
                      &s.fault.unrecoverableAccesses, error))
        return std::nullopt;

    const JsonValue *seu = v.find("seu");
    if (seu == nullptr || !seu->isObject()) {
        if (error != nullptr)
            *error = "missing `seu` object";
        return std::nullopt;
    }
    if (!readU64Field(*seu, "flips", &s.seu.flips, error) ||
        !readU64Field(*seu, "live_hits", &s.seu.liveHits, error) ||
        !readU64Field(*seu, "masked_flips", &s.seu.maskedFlips, error) ||
        !readU64Field(*seu, "hits_compressed", &s.seu.hitsCompressed,
                      error) ||
        !readU64Field(*seu, "corrupted_reads", &s.seu.corruptedReads,
                      error) ||
        !readU64Field(*seu, "corrupted_lanes", &s.seu.corruptedLanes,
                      error) ||
        !readU64Field(*seu, "amplified_reads", &s.seu.amplifiedReads,
                      error) ||
        !readU64Field(*seu, "ecc_corrected", &s.seu.eccCorrectedReads,
                      error) ||
        !readU64Field(*seu, "detected_uncorrectable",
                      &s.seu.detectedUncorrectable, error) ||
        !readU64Field(*seu, "scrub_visits", &s.seu.scrubVisits, error) ||
        !readU64Field(*seu, "scrub_writes", &s.seu.scrubWrites, error) ||
        !readU64Field(*seu, "scrub_corrected", &s.seu.scrubCorrected,
                      error) ||
        !readU64Field(*seu, "ecc_check_bit_bytes",
                      &s.seu.eccCheckBitBytes, error))
        return std::nullopt;

    const JsonValue *frontend = v.find("frontend");
    const JsonValue *sha = v.find("image_sha256");
    if (frontend == nullptr || frontend->asString() == nullptr ||
        sha == nullptr || sha->asString() == nullptr) {
        if (error != nullptr)
            *error = "missing provenance fields";
        return std::nullopt;
    }
    s.frontend = *frontend->asString();
    s.imageSha = *sha->asString();
    return s;
}

} // namespace warpcomp
