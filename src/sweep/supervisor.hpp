/**
 * @file
 * Process supervisor for the resilient sweep runner. Each grid point
 * runs in its own child process (a `--point=` self-invocation of the
 * driver binary), so a crash, livelock, or OOM in one misbehaving
 * point can never take down the grid:
 *
 *   - watchdog: every child gets a wall-clock deadline; an expired
 *     child is SIGKILLed and counted as a timeout;
 *   - bounded retry with exponential backoff: crashed/timed-out points
 *     are requeued up to maxAttempts with backoffMs << (attempt-1)
 *     delay;
 *   - graceful degradation: a point that exhausts its attempts becomes
 *     a `failed` outcome with a deterministic reason string, and the
 *     grid keeps going;
 *   - checkpointing: every settled point is appended to the journal
 *     (fsynced) the moment it completes, and journal/cache hits skip
 *     the child entirely.
 *
 * Results are returned in submission order regardless of worker count
 * or completion order, so the merged report is byte-identical across
 * `--threads` values — the same contract the in-process parallel
 * runner gives.
 */

#ifndef WARPCOMP_SWEEP_SUPERVISOR_HPP
#define WARPCOMP_SWEEP_SUPERVISOR_HPP

#include <optional>
#include <string>
#include <vector>

#include "sweep/chaos.hpp"
#include "sweep/journal.hpp"
#include "sweep/point.hpp"

namespace warpcomp {

/** Supervisor knobs (see parseSweepArgs for the CLI surface). */
struct SupervisorOptions
{
    /** Path of the driver binary to self-invoke (argv[0]). */
    std::string selfPath;
    /** Concurrent child processes (already resolved, >= 1). */
    u32 workers = 1;
    /** Per-point wall-clock watchdog in seconds. */
    double timeoutSeconds = 300.0;
    /** Total attempts per point (1 = no retries). */
    u32 maxAttempts = 3;
    /** Base retry backoff; doubles per subsequent attempt. */
    u32 backoffMs = 100;
    /** Failure injection forwarded to children (test/CI only). */
    ChaosSpec chaos;
    /**
     * Test hook: abruptly _exit(3) after this many points have been
     * journaled (0 = disabled). Gives checkpoint/resume tests a
     * deterministic mid-grid death without racy external SIGKILLs.
     */
    u32 dieAfterPoints = 0;
};

/** Outcome of one grid point, in submission order. */
struct PointOutcome
{
    SweepPoint point;
    std::string key;
    std::string status;     ///< "ok" | "failed"
    u32 attempts = 0;
    std::string reason;     ///< deterministic failure taxonomy
    /** Raw stats payload (ok points). */
    std::optional<JsonValue> statsJson;
    /** Parsed flat record (ok points). */
    std::optional<PointStats> stats;
    /** Served from the journal/cache — no child was spawned. */
    bool fromCache = false;

    bool ok() const { return status == "ok"; }
};

/** Supervision counters (reported out-of-band, never in the merged
 *  report, which must stay identical across clean/resumed runs). */
struct SweepCounters
{
    u64 points = 0;         ///< grid points requested
    u64 spawned = 0;        ///< child processes forked
    u64 cacheHits = 0;      ///< points served from journal/cache
    u64 retries = 0;        ///< re-spawns after crash/timeout
    u64 timeouts = 0;       ///< watchdog SIGKILLs
    u64 crashes = 0;        ///< nonzero exits / signal deaths
    u64 okPoints = 0;
    u64 failedPoints = 0;   ///< exhausted their attempts
};

/**
 * Run @p points under supervision. @p cache serves completed points
 * (resume / repeated points); @p journal (nullable) records each
 * settled point. Returns outcomes in submission order.
 */
std::vector<PointOutcome>
runSupervised(const std::vector<SweepPoint> &points,
              const SupervisorOptions &opts, const JournalIndex *cache,
              SweepJournal *journal, SweepCounters *counters);

} // namespace warpcomp

#endif // WARPCOMP_SWEEP_SUPERVISOR_HPP
