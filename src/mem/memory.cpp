#include "mem/memory.hpp"

#include <bit>
#include <cstring>

#include "common/log.hpp"

namespace warpcomp {

GlobalMemory::GlobalMemory(u64 bytes)
    : data_(static_cast<u8 *>(std::calloc(bytes > 0 ? bytes : 1, 1))),
      size_(bytes)
{
    WC_ASSERT(data_ != nullptr,
              "cannot allocate " << bytes << " B global memory image");
}

u64
GlobalMemory::alloc(u64 bytes, u64 align)
{
    WC_ASSERT(align != 0 && (align & (align - 1)) == 0,
              "alignment must be a power of two");
    const u64 base = (brk_ + align - 1) & ~(align - 1);
    WC_ASSERT(base + bytes <= size_,
              "global memory exhausted: need " << base + bytes
              << " have " << size_);
    brk_ = base + bytes;
    return base;
}

void
GlobalMemory::checkAddr(u64 addr) const
{
    WC_ASSERT(addr + 4 <= size_,
              "global access at " << addr << " beyond " << size_);
    WC_ASSERT((addr & 3) == 0, "unaligned 32-bit global access at " << addr);
}

u32
GlobalMemory::read32(u64 addr) const
{
    checkAddr(addr);
    u32 v;
    std::memcpy(&v, data_.get() + addr, 4);
    return v;
}

void
GlobalMemory::write32(u64 addr, u32 value)
{
    checkAddr(addr);
    std::memcpy(data_.get() + addr, &value, 4);
}

float
GlobalMemory::readF32(u64 addr) const
{
    return std::bit_cast<float>(read32(addr));
}

void
GlobalMemory::writeF32(u64 addr, float value)
{
    write32(addr, std::bit_cast<u32>(value));
}

SharedMemory::SharedMemory(u32 bytes) : data_(bytes, 0)
{
}

u32
SharedMemory::read32(u32 addr) const
{
    WC_ASSERT(addr + 4 <= data_.size(),
              "shared access at " << addr << " beyond " << data_.size());
    u32 v;
    std::memcpy(&v, data_.data() + addr, 4);
    return v;
}

void
SharedMemory::write32(u32 addr, u32 value)
{
    WC_ASSERT(addr + 4 <= data_.size(),
              "shared access at " << addr << " beyond " << data_.size());
    std::memcpy(data_.data() + addr, &value, 4);
}

ConstantMemory::ConstantMemory(u32 bytes) : data_(bytes, 0)
{
}

void
ConstantMemory::write32(u32 addr, u32 value)
{
    WC_ASSERT(addr + 4 <= data_.size(), "constant write out of range");
    std::memcpy(data_.data() + addr, &value, 4);
}

u32
ConstantMemory::read32(u32 addr) const
{
    WC_ASSERT(addr + 4 <= data_.size(), "constant read out of range");
    u32 v;
    std::memcpy(&v, data_.data() + addr, 4);
    return v;
}

u32
ConstantMemory::push(u32 value)
{
    const u32 addr = brk_;
    write32(addr, value);
    brk_ += 4;
    return addr;
}

} // namespace warpcomp
