/**
 * @file
 * Memory access timing: coalescing and latency model for the SM's
 * load/store unit. Purely combinational helpers plus the tunable
 * parameter block; the SM pipeline owns the in-flight request queue.
 */

#ifndef WARPCOMP_MEM_MEM_TIMING_HPP
#define WARPCOMP_MEM_MEM_TIMING_HPP

#include <span>

#include "common/types.hpp"

namespace warpcomp {

/** Latency parameters for the three memory spaces. */
struct MemTimingParams
{
    u32 globalLatency = 300;    ///< first-segment global round trip
    u32 globalPerSegment = 4;   ///< extra cycles per additional 128-B segment
    u32 sharedLatency = 24;     ///< shared scratchpad latency
    u32 sharedPerConflict = 1;  ///< extra cycles per bank-conflict replay
    u32 constLatency = 20;      ///< constant-cache hit latency
    /** Pipeline drain of a memory op whose effective mask is empty
     *  (all lanes guarded off): no request leaves the SM, only the
     *  LSU bookkeeping latency is paid. Part of the sweepable timing
     *  surface so latency sweeps cannot silently miss this path. */
    u32 zeroMaskLatency = 8;
    u32 maxOutstanding = 48;    ///< per-SM MSHR budget
};

/**
 * Number of distinct 128-byte segments touched by the active lanes'
 * addresses — the coalescing cost of a global access.
 *
 * @param addrs one address per lane
 * @param mask active lanes
 */
u32 coalescedSegments(std::span<const u64> addrs, LaneMask mask);

/**
 * Maximum shared-memory bank conflict degree across 32 4-byte banks.
 * Lanes hitting the same bank at the same address broadcast (degree 1).
 */
u32 sharedConflictDegree(std::span<const u64> addrs, LaneMask mask);

/** Total latency of a global access touching @p segments segments. */
u32 globalAccessLatency(const MemTimingParams &p, u32 segments);

/** Total latency of a shared access with conflict degree @p degree. */
u32 sharedAccessLatency(const MemTimingParams &p, u32 degree);

} // namespace warpcomp

#endif // WARPCOMP_MEM_MEM_TIMING_HPP
