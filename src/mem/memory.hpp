/**
 * @file
 * Functional memory spaces: flat global memory, per-CTA shared memory,
 * and a read-only constant bank. All spaces are byte-addressed and
 * accessed in 32-bit words, matching the ISA's LDG/STG/LDS/STS/LDC.
 */

#ifndef WARPCOMP_MEM_MEMORY_HPP
#define WARPCOMP_MEM_MEMORY_HPP

#include <cstdlib>
#include <memory>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace warpcomp {

/**
 * Flat global memory with a bump allocator. Workloads allocate named
 * buffers at setup; addresses handed to kernels through the constant
 * bank or immediates.
 */
class GlobalMemory
{
  public:
    explicit GlobalMemory(u64 bytes);

    /** Allocate @p bytes aligned to @p align; returns the base address. */
    u64 alloc(u64 bytes, u64 align = 128);

    u32 read32(u64 addr) const;
    void write32(u64 addr, u32 value);

    float readF32(u64 addr) const;
    void writeF32(u64 addr, float value);

    u64 size() const { return size_; }

    /** Raw backing store; lets tests diff whole memory images. */
    std::span<const u8> bytes() const { return {data_.get(), size_}; }

  private:
    void checkAddr(u64 addr) const;

    struct FreeDeleter
    {
        void operator()(u8 *p) const { std::free(p); }
    };

    /** calloc-backed so a multi-megabyte image costs zero-page
     *  mappings, not an eager memset, per simulation run. */
    std::unique_ptr<u8[], FreeDeleter> data_;
    u64 size_ = 0;
    u64 brk_ = 0;
};

/** Per-CTA scratchpad. */
class SharedMemory
{
  public:
    explicit SharedMemory(u32 bytes);

    u32 read32(u32 addr) const;
    void write32(u32 addr, u32 value);
    u32 size() const { return static_cast<u32>(data_.size()); }

  private:
    std::vector<u8> data_;
};

/**
 * Read-only constant bank; kernel parameters (buffer base addresses,
 * problem sizes, scalar inputs) live here, mirroring CUDA's param space.
 */
class ConstantMemory
{
  public:
    explicit ConstantMemory(u32 bytes = 4096);

    void write32(u32 addr, u32 value);
    u32 read32(u32 addr) const;
    u32 size() const { return static_cast<u32>(data_.size()); }

    /** Append one 32-bit parameter; returns its byte address. */
    u32 push(u32 value);
    void reset() { brk_ = 0; }

  private:
    std::vector<u8> data_;
    u32 brk_ = 0;
};

} // namespace warpcomp

#endif // WARPCOMP_MEM_MEMORY_HPP
