#include "mem/mem_timing.hpp"

#include <algorithm>
#include <array>

#include "common/bitops.hpp"
#include "common/log.hpp"

namespace warpcomp {

u32
coalescedSegments(std::span<const u64> addrs, LaneMask mask)
{
    WC_ASSERT(addrs.size() >= kWarpSize, "need one address per lane");
    // Collect distinct 128-B segment ids among active lanes. 32 entries
    // max, so a small sorted array beats a hash set.
    std::array<u64, kWarpSize> segs{};
    u32 n = 0;
    for (u32 lane = 0; lane < kWarpSize; ++lane) {
        if (!laneActive(mask, lane))
            continue;
        const u64 seg = addrs[lane] >> 7;
        bool found = false;
        for (u32 i = 0; i < n; ++i) {
            if (segs[i] == seg) {
                found = true;
                break;
            }
        }
        if (!found)
            segs[n++] = seg;
    }
    return std::max<u32>(n, 1);
}

u32
sharedConflictDegree(std::span<const u64> addrs, LaneMask mask)
{
    WC_ASSERT(addrs.size() >= kWarpSize, "need one address per lane");
    // 32 banks, 4-byte interleave. Same word -> broadcast, no conflict.
    std::array<u32, kWarpSize> count{};
    std::array<u64, kWarpSize> firstAddr{};
    std::array<bool, kWarpSize> multi{};
    for (u32 lane = 0; lane < kWarpSize; ++lane) {
        if (!laneActive(mask, lane))
            continue;
        const u32 bank = static_cast<u32>((addrs[lane] >> 2) % kWarpSize);
        if (count[bank] == 0) {
            firstAddr[bank] = addrs[lane];
            count[bank] = 1;
        } else if (addrs[lane] != firstAddr[bank] || multi[bank]) {
            // Distinct word in the same bank: serialized replay. Once a
            // bank sees two distinct words, later matches still replay.
            multi[bank] = true;
            ++count[bank];
        }
    }
    u32 degree = 1;
    for (u32 bank = 0; bank < kWarpSize; ++bank)
        degree = std::max(degree, count[bank]);
    return degree;
}

u32
globalAccessLatency(const MemTimingParams &p, u32 segments)
{
    WC_ASSERT(segments >= 1, "segments must be positive");
    return p.globalLatency + (segments - 1) * p.globalPerSegment;
}

u32
sharedAccessLatency(const MemTimingParams &p, u32 degree)
{
    WC_ASSERT(degree >= 1, "degree must be positive");
    return p.sharedLatency + (degree - 1) * p.sharedPerConflict;
}

} // namespace warpcomp
