#include "compress/unit.hpp"

#include "common/log.hpp"

namespace warpcomp {

UnitPool::UnitPool(u32 count, u32 latency)
    : count_(count), latency_(latency)
{
    WC_ASSERT(count > 0, "unit pool must have at least one unit");
}

bool
UnitPool::canIssue(Cycle now) const
{
    return lastCycle_ != now || issuedThisCycle_ < count_;
}

std::optional<Cycle>
UnitPool::tryIssue(Cycle now)
{
    if (lastCycle_ != now) {
        lastCycle_ = now;
        issuedThisCycle_ = 0;
    }
    if (issuedThisCycle_ >= count_)
        return std::nullopt;
    ++issuedThisCycle_;
    ++activations_;
    return now + latency_;
}

} // namespace warpcomp
