#include "compress/schemes.hpp"

#include "common/log.hpp"

namespace warpcomp {

namespace {

constexpr BdiParams kFixed40[] = {{4, 0}};
constexpr BdiParams kFixed41[] = {{4, 1}};
constexpr BdiParams kFixed42[] = {{4, 2}};

} // namespace

std::span<const BdiParams>
schemeCandidates(CompressionScheme scheme)
{
    switch (scheme) {
      case CompressionScheme::None: return {};
      case CompressionScheme::Warped: return warpedCandidates();
      case CompressionScheme::Fixed40: return kFixed40;
      case CompressionScheme::Fixed41: return kFixed41;
      case CompressionScheme::Fixed42: return kFixed42;
      case CompressionScheme::FullBdi: return fullBdiCandidates();
      default: WC_PANIC("unknown compression scheme");
    }
}

std::string
schemeName(CompressionScheme scheme)
{
    switch (scheme) {
      case CompressionScheme::None: return "baseline";
      case CompressionScheme::Warped: return "warped-compression";
      case CompressionScheme::Fixed40: return "<4,0>";
      case CompressionScheme::Fixed41: return "<4,1>";
      case CompressionScheme::Fixed42: return "<4,2>";
      case CompressionScheme::FullBdi: return "full-bdi";
      default: WC_PANIC("unknown compression scheme");
    }
}

namespace {

constexpr struct
{
    CompressionScheme scheme;
    const char *id;
} kSchemeIds[] = {
    {CompressionScheme::None, "None"},
    {CompressionScheme::Warped, "Warped"},
    {CompressionScheme::Fixed40, "Fixed40"},
    {CompressionScheme::Fixed41, "Fixed41"},
    {CompressionScheme::Fixed42, "Fixed42"},
    {CompressionScheme::FullBdi, "FullBdi"},
};

} // namespace

std::string
schemeId(CompressionScheme scheme)
{
    for (const auto &entry : kSchemeIds)
        if (entry.scheme == scheme)
            return entry.id;
    WC_PANIC("unknown compression scheme");
}

std::optional<CompressionScheme>
schemeFromId(const std::string &id)
{
    for (const auto &entry : kSchemeIds)
        if (id == entry.id)
            return entry.scheme;
    return std::nullopt;
}

u32
indicatorBanks(RangeIndicator ind)
{
    switch (ind) {
      case RangeIndicator::Base40: return 1;
      case RangeIndicator::Base41: return 3;
      case RangeIndicator::Base42: return 5;
      case RangeIndicator::Uncompressed: return kBanksPerWarpReg;
      default: WC_PANIC("unknown range indicator");
    }
}

u32
indicatorBytes(RangeIndicator ind)
{
    switch (ind) {
      case RangeIndicator::Base40: return bdiCompressedSize({4, 0});
      case RangeIndicator::Base41: return bdiCompressedSize({4, 1});
      case RangeIndicator::Base42: return bdiCompressedSize({4, 2});
      case RangeIndicator::Uncompressed: return kWarpRegBytes;
      default: WC_PANIC("unknown range indicator");
    }
}

RangeIndicator
indicatorFor(const BdiEncoded &enc)
{
    if (!enc.compressed)
        return RangeIndicator::Uncompressed;
    if (enc.params == BdiParams{4, 0})
        return RangeIndicator::Base40;
    if (enc.params == BdiParams{4, 1})
        return RangeIndicator::Base41;
    if (enc.params == BdiParams{4, 2})
        return RangeIndicator::Base42;
    // Non-warped parameter (e.g. an <8,Y> from the FullBdi explorer):
    // represent by footprint only; the indicator is a warped-scheme
    // concept and the closest bucket is uncompressed.
    return RangeIndicator::Uncompressed;
}

} // namespace warpcomp
