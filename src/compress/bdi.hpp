/**
 * @file
 * Base-delta-immediate (BDI) codec for 128-byte warp registers (Sec. 4).
 *
 * The data is split into chunks of `baseBytes`; the first chunk is the
 * base and every chunk is stored as a signed delta of `deltaBytes` bytes
 * against it. `deltaBytes == 0` is the special all-chunks-equal case.
 * A register compresses under <X,Y> iff every delta fits in Y bytes.
 *
 * The compressed length follows Eq. (1) of the paper:
 *   Lcomp = Lbase + Ldelta * (Linput / Lbase - 1)
 */

#ifndef WARPCOMP_COMPRESS_BDI_HPP
#define WARPCOMP_COMPRESS_BDI_HPP

#include <array>
#include <cassert>
#include <cstring>
#include <optional>
#include <span>

#include "common/types.hpp"

namespace warpcomp {

/** A warp register's functional value: one 32-bit word per lane. */
using WarpRegValue = std::array<u32, kWarpSize>;

/** One <base,delta> parameter choice, in bytes. */
struct BdiParams
{
    u32 baseBytes = 4;
    u32 deltaBytes = 0;

    bool operator==(const BdiParams &) const = default;
};

/** The seven candidates the paper's design-space explorer considers. */
std::span<const BdiParams> fullBdiCandidates();

/** The three fixed choices warped-compression uses: <4,0> <4,1> <4,2>. */
std::span<const BdiParams> warpedCandidates();

/** Compressed length in bytes per Eq. (1); input defaults to 128 B. */
constexpr u32
bdiCompressedSize(BdiParams p, u32 input_bytes = kWarpRegBytes)
{
    return p.baseBytes + p.deltaBytes * (input_bytes / p.baseBytes - 1);
}

/** Register banks (16-B each) needed to hold @p bytes. */
constexpr u32
banksForBytes(u32 bytes)
{
    return (bytes + kBankEntryBytes - 1) / kBankEntryBytes;
}

/** Serialize a warp register value to its 128-byte memory image. */
std::array<u8, kWarpRegBytes> toBytes(const WarpRegValue &value);
/** Rebuild a warp register value from its 128-byte image. */
WarpRegValue fromBytes(std::span<const u8> bytes);

/** True when @p data compresses under @p params. */
bool bdiCompressible(std::span<const u8> data, BdiParams params);

/**
 * Fixed-capacity byte buffer for one encoded register. An encoding is
 * never larger than the 128-byte input, so the payload lives inline and
 * moving a BdiEncoded through the pipeline performs no heap allocation.
 */
class BdiByteBuf
{
  public:
    BdiByteBuf() = default;

    u8 *data() { return data_.data(); }
    const u8 *data() const { return data_.data(); }
    u32 size() const { return size_; }
    bool empty() const { return size_ == 0; }
    static constexpr u32 capacity() { return kWarpRegBytes; }

    void clear() { size_ = 0; }

    /** Set the logical size; the codec fast paths write the payload
     *  in place through data() instead of byte-wise push_back. */
    void
    resize(u32 size)
    {
        assert(size <= kWarpRegBytes);
        size_ = size;
    }

    void
    push_back(u8 b)
    {
        assert(size_ < kWarpRegBytes);
        data_[size_++] = b;
    }

    /** Replace the contents with [first, last). */
    template <typename It>
    void
    assign(It first, It last)
    {
        size_ = 0;
        for (; first != last; ++first)
            push_back(*first);
    }

    /** Replace the contents with @p src (fast path for raw images). */
    void
    assign(std::span<const u8> src)
    {
        assert(src.size() <= kWarpRegBytes);
        size_ = static_cast<u32>(src.size());
        std::memcpy(data_.data(), src.data(), src.size());
    }

    u8 &operator[](std::size_t i) { return data_[i]; }
    const u8 &operator[](std::size_t i) const { return data_[i]; }

    const u8 *begin() const { return data_.data(); }
    const u8 *end() const { return data_.data() + size_; }

    bool
    operator==(const BdiByteBuf &other) const
    {
        return size_ == other.size_ &&
            std::memcmp(data_.data(), other.data_.data(), size_) == 0;
    }

  private:
    std::array<u8, kWarpRegBytes> data_{};
    u32 size_ = 0;
};

/** Result of attempting compression on a warp register. */
struct BdiEncoded
{
    /** Parameters used; meaningless when !compressed. */
    BdiParams params{};
    bool compressed = false;
    /** Compressed bytes (size == bdiCompressedSize(params)) when
     *  compressed, else the raw 128-byte image. Stored inline: no heap
     *  allocation per encode or per move through the pipeline. */
    BdiByteBuf bytes;

    u32 sizeBytes() const { return bytes.size(); }
    u32 banks() const { return banksForBytes(sizeBytes()); }
};

/**
 * Compress @p data with the smallest-footprint candidate that fits (ties
 * broken toward the earlier candidate). Falls back to uncompressed.
 */
BdiEncoded bdiCompress(std::span<const u8> data,
                       std::span<const BdiParams> candidates);

/** Invert bdiCompress; always returns the original 128 bytes. */
std::array<u8, kWarpRegBytes> bdiDecompress(const BdiEncoded &enc);

/**
 * The original-BDI explorer used for Fig 5: among @p candidates, the
 * parameter pair giving the smallest compressed size, or nullopt when
 * nothing fits.
 */
std::optional<BdiParams> bdiBestParams(std::span<const u8> data,
                                       std::span<const BdiParams> candidates);

} // namespace warpcomp

#endif // WARPCOMP_COMPRESS_BDI_HPP
