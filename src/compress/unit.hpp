/**
 * @file
 * Timing/occupancy model for the compressor and decompressor unit pools
 * (Sec. 5.1). Each unit is a pipelined collection of 32 subtractors plus
 * sign-extension comparators: initiation interval of one warp register
 * per cycle per unit, configurable result latency.
 */

#ifndef WARPCOMP_COMPRESS_UNIT_HPP
#define WARPCOMP_COMPRESS_UNIT_HPP

#include <optional>

#include "common/types.hpp"

namespace warpcomp {

/**
 * A pool of identical pipelined units. At most `count` operations may
 * start per cycle; each finishes `latency` cycles later.
 */
class UnitPool
{
  public:
    /**
     * @param count number of units in the pool
     * @param latency cycles from issue to result
     */
    UnitPool(u32 count, u32 latency);

    /**
     * Try to start an operation at @p now. Returns the completion cycle,
     * or nullopt when every unit already accepted an operation this
     * cycle. A zero-latency pool is supported: the returned completion
     * cycle is then @p now itself (an unambiguous value, unlike the old
     * `0` sentinel, which a `decompressLatency = 0` sweep could forge).
     */
    std::optional<Cycle> tryIssue(Cycle now);

    /** True when another operation can still start at @p now. */
    bool canIssue(Cycle now) const;

    u32 count() const { return count_; }
    u32 latency() const { return latency_; }
    void setLatency(u32 latency) { latency_ = latency; }

    /** Total operations issued (== unit activations for energy). */
    u64 activations() const { return activations_; }

  private:
    u32 count_;
    u32 latency_;
    Cycle lastCycle_ = ~Cycle{0};
    u32 issuedThisCycle_ = 0;
    u64 activations_ = 0;
};

} // namespace warpcomp

#endif // WARPCOMP_COMPRESS_UNIT_HPP
