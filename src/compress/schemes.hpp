/**
 * @file
 * Named compression schemes used across the evaluation: the dynamic
 * warped-compression scheme, the single-choice static variants from the
 * Sec. 6.6 design-space exploration, and the full-BDI explorer.
 */

#ifndef WARPCOMP_COMPRESS_SCHEMES_HPP
#define WARPCOMP_COMPRESS_SCHEMES_HPP

#include <optional>
#include <span>
#include <string>

#include "compress/bdi.hpp"

namespace warpcomp {

/** Compression scheme selector. */
enum class CompressionScheme : u8 {
    None,       ///< baseline: registers always uncompressed
    Warped,     ///< dynamic choice among <4,0> <4,1> <4,2> (default)
    Fixed40,    ///< static <4,0> only (the scalarization comparator)
    Fixed41,    ///< static <4,1> only
    Fixed42,    ///< static <4,2> only
    FullBdi     ///< all seven candidates (original-BDI explorer)
};

/** Candidate parameter list for a scheme (empty for None). */
std::span<const BdiParams> schemeCandidates(CompressionScheme scheme);

/** Human-readable scheme name. */
std::string schemeName(CompressionScheme scheme);

/** Stable identifier for serialization ("None", "Warped", "Fixed40",
 *  ...); unlike schemeName these round-trip through schemeFromId. */
std::string schemeId(CompressionScheme scheme);

/** Inverse of schemeId; nullopt on unknown identifiers. */
std::optional<CompressionScheme> schemeFromId(const std::string &id);

/**
 * The 2-bit compression-range indicator the bank arbiter stores per warp
 * register (Sec. 4): which of the three choices compressed the register,
 * or uncompressed.
 */
enum class RangeIndicator : u8 {
    Base40 = 0,         ///< <4,0>: 1 bank
    Base41 = 1,         ///< <4,1>: 3 banks
    Base42 = 2,         ///< <4,2>: 5 banks
    Uncompressed = 3    ///< 8 banks
};

/** Banks occupied for a range-indicator value. */
u32 indicatorBanks(RangeIndicator ind);

/** Payload bytes stored for a range-indicator value (4/35/66/128). */
u32 indicatorBytes(RangeIndicator ind);

/** Indicator for a compression outcome under the Warped scheme. */
RangeIndicator indicatorFor(const BdiEncoded &enc);

} // namespace warpcomp

#endif // WARPCOMP_COMPRESS_SCHEMES_HPP
