#include "compress/bdi.hpp"

#include <cstring>

#include "common/bitops.hpp"
#include "common/log.hpp"

namespace warpcomp {

namespace {

/** Load a little-endian chunk of 1/2/4/8 bytes as a signed value. */
i64
loadChunk(std::span<const u8> data, u32 index, u32 chunk_bytes)
{
    u64 raw = 0;
    std::memcpy(&raw, data.data() + index * chunk_bytes, chunk_bytes);
    // Sign-extend from chunk_bytes * 8 bits.
    const u32 bits = chunk_bytes * 8;
    if (bits < 64) {
        const u64 sign = u64{1} << (bits - 1);
        raw = (raw ^ sign) - sign;
    }
    return static_cast<i64>(raw);
}

/** Store the low @p bytes bytes of @p value little-endian. */
void
storeBytes(std::vector<u8> &out, i64 value, u32 bytes)
{
    u64 raw = static_cast<u64>(value);
    for (u32 i = 0; i < bytes; ++i) {
        out.push_back(static_cast<u8>(raw & 0xFF));
        raw >>= 8;
    }
}

/** Sign-extend @p bytes little-endian bytes at @p p. */
i64
loadSigned(const u8 *p, u32 bytes)
{
    u64 raw = 0;
    std::memcpy(&raw, p, bytes);
    const u32 bits = bytes * 8;
    if (bits < 64) {
        const u64 sign = u64{1} << (bits - 1);
        raw = (raw ^ sign) - sign;
    }
    return static_cast<i64>(raw);
}

constexpr BdiParams kFullCandidates[] = {
    {4, 0}, {4, 1}, {4, 2}, {8, 0}, {8, 1}, {8, 2}, {8, 4},
};

constexpr BdiParams kWarpedCandidates[] = {
    {4, 0}, {4, 1}, {4, 2},
};

} // namespace

std::span<const BdiParams>
fullBdiCandidates()
{
    return kFullCandidates;
}

std::span<const BdiParams>
warpedCandidates()
{
    return kWarpedCandidates;
}

std::array<u8, kWarpRegBytes>
toBytes(const WarpRegValue &value)
{
    std::array<u8, kWarpRegBytes> out{};
    std::memcpy(out.data(), value.data(), kWarpRegBytes);
    return out;
}

WarpRegValue
fromBytes(std::span<const u8> bytes)
{
    WC_ASSERT(bytes.size() == kWarpRegBytes, "warp register image must be "
              << kWarpRegBytes << " bytes, got " << bytes.size());
    WarpRegValue v{};
    std::memcpy(v.data(), bytes.data(), kWarpRegBytes);
    return v;
}

bool
bdiCompressible(std::span<const u8> data, BdiParams params)
{
    WC_ASSERT(data.size() % params.baseBytes == 0,
              "data not a multiple of the chunk size");
    WC_ASSERT(params.baseBytes == 1 || params.baseBytes == 2 ||
              params.baseBytes == 4 || params.baseBytes == 8,
              "unsupported base size " << params.baseBytes);
    WC_ASSERT(params.deltaBytes < params.baseBytes,
              "delta must be narrower than the base");

    const u32 chunks = static_cast<u32>(data.size()) / params.baseBytes;
    const i64 base = loadChunk(data, 0, params.baseBytes);
    for (u32 i = 1; i < chunks; ++i) {
        const i64 delta = loadChunk(data, i, params.baseBytes) - base;
        if (params.deltaBytes == 0) {
            if (delta != 0)
                return false;
        } else if (!fitsSigned(delta, params.deltaBytes)) {
            return false;
        }
    }
    return true;
}

BdiEncoded
bdiCompress(std::span<const u8> data, std::span<const BdiParams> candidates)
{
    WC_ASSERT(data.size() == kWarpRegBytes,
              "register compression operates on 128-byte warp registers");

    const BdiParams *best = nullptr;
    u32 best_size = kWarpRegBytes;
    for (const BdiParams &p : candidates) {
        const u32 size = bdiCompressedSize(p);
        if (size < best_size && bdiCompressible(data, p)) {
            best = &p;
            best_size = size;
        }
    }

    BdiEncoded enc;
    if (best == nullptr) {
        enc.compressed = false;
        enc.bytes.assign(data.begin(), data.end());
        return enc;
    }

    enc.compressed = true;
    enc.params = *best;
    enc.bytes.reserve(best_size);
    const u32 chunks = kWarpRegBytes / best->baseBytes;
    const i64 base = loadChunk(data, 0, best->baseBytes);
    storeBytes(enc.bytes, base, best->baseBytes);
    for (u32 i = 1; i < chunks; ++i) {
        const i64 delta = loadChunk(data, i, best->baseBytes) - base;
        storeBytes(enc.bytes, delta, best->deltaBytes);
    }
    WC_ASSERT(enc.bytes.size() == best_size, "compressed size mismatch");
    return enc;
}

std::array<u8, kWarpRegBytes>
bdiDecompress(const BdiEncoded &enc)
{
    std::array<u8, kWarpRegBytes> out{};
    if (!enc.compressed) {
        WC_ASSERT(enc.bytes.size() == kWarpRegBytes,
                  "uncompressed payload must be 128 bytes");
        std::memcpy(out.data(), enc.bytes.data(), kWarpRegBytes);
        return out;
    }

    const BdiParams p = enc.params;
    const u32 chunks = kWarpRegBytes / p.baseBytes;
    const i64 base = loadSigned(enc.bytes.data(), p.baseBytes);
    // Base chunk.
    u64 raw = static_cast<u64>(base);
    std::memcpy(out.data(), &raw, p.baseBytes);
    // Delta chunks.
    for (u32 i = 1; i < chunks; ++i) {
        i64 delta = 0;
        if (p.deltaBytes > 0) {
            delta = loadSigned(enc.bytes.data() + p.baseBytes +
                               (i - 1) * p.deltaBytes, p.deltaBytes);
        }
        raw = static_cast<u64>(base + delta);
        std::memcpy(out.data() + i * p.baseBytes, &raw, p.baseBytes);
    }
    return out;
}

std::optional<BdiParams>
bdiBestParams(std::span<const u8> data, std::span<const BdiParams> candidates)
{
    const BdiParams *best = nullptr;
    u32 best_size = ~0u;
    for (const BdiParams &p : candidates) {
        const u32 size = bdiCompressedSize(
            p, static_cast<u32>(data.size()));
        if (size < best_size && size < data.size() &&
            bdiCompressible(data, p)) {
            best = &p;
            best_size = size;
        }
    }
    if (best == nullptr)
        return std::nullopt;
    return *best;
}

} // namespace warpcomp
