#include "compress/bdi.hpp"

#include <cstring>

#include "common/bitops.hpp"
#include "common/log.hpp"

namespace warpcomp {

namespace {

/** Load a little-endian chunk of 1/2/4/8 bytes as a signed value. */
i64
loadChunk(std::span<const u8> data, u32 index, u32 chunk_bytes)
{
    u64 raw = 0;
    std::memcpy(&raw, data.data() + index * chunk_bytes, chunk_bytes);
    // Sign-extend from chunk_bytes * 8 bits.
    const u32 bits = chunk_bytes * 8;
    if (bits < 64) {
        const u64 sign = u64{1} << (bits - 1);
        raw = (raw ^ sign) - sign;
    }
    return static_cast<i64>(raw);
}

/** Store the low @p bytes bytes of @p value little-endian. */
void
storeBytes(BdiByteBuf &out, i64 value, u32 bytes)
{
    u64 raw = static_cast<u64>(value);
    for (u32 i = 0; i < bytes; ++i) {
        out.push_back(static_cast<u8>(raw & 0xFF));
        raw >>= 8;
    }
}

/** Sign-extend @p bytes little-endian bytes at @p p. */
i64
loadSigned(const u8 *p, u32 bytes)
{
    u64 raw = 0;
    std::memcpy(&raw, p, bytes);
    const u32 bits = bytes * 8;
    if (bits < 64) {
        const u64 sign = u64{1} << (bits - 1);
        raw = (raw ^ sign) - sign;
    }
    return static_cast<i64>(raw);
}

/**
 * Delta-width feasibility for one base size, answered by a single pass.
 * The fits are nested (zero ⊂ 1B ⊂ 2B ⊂ 4B), so one scan of the data
 * answers every candidate sharing the base size; bdiCompress uses this
 * to avoid re-walking the 128-byte image once per candidate.
 */
struct DeltaFits
{
    bool zero = true;
    bool one = true;
    bool two = true;
    bool four = true;

    bool
    fits(u32 delta_bytes) const
    {
        switch (delta_bytes) {
          case 0: return zero;
          case 1: return one;
          case 2: return two;
          case 4: return four;
          default: WC_PANIC("unscanned delta width " << delta_bytes);
        }
    }
};

DeltaFits
scanDeltas(std::span<const u8> data, u32 base_bytes)
{
    DeltaFits f;
    const u32 chunks = static_cast<u32>(data.size()) / base_bytes;
    const i64 base = loadChunk(data, 0, base_bytes);
    for (u32 i = 1; i < chunks; ++i) {
        const i64 d = loadChunk(data, i, base_bytes) - base;
        f.zero = f.zero && d == 0;
        f.one = f.one && fitsSigned(d, 1);
        f.two = f.two && fitsSigned(d, 2);
        if (!fitsSigned(d, 4)) {
            // Nested ranges: nothing narrower can fit either.
            f = {false, false, false, false};
            break;
        }
    }
    return f;
}

/**
 * Base-4 fast path over the 32 contiguous u32 lanes of a warp
 * register: fixed trip count, no data-dependent exits, mask
 * accumulators instead of short-circuit booleans — straight-line code
 * the compiler can auto-vectorize. Deltas are computed in i64 (a u32
 * subtraction would wrap for e.g. an INT32_MIN base against an
 * INT32_MAX lane). Equivalent to scanDeltas(data, 4): the early break
 * there only skips deltas once every fit is already dead.
 */
DeltaFits
scanDeltas4(std::span<const u8> data)
{
    u32 lanes[kWarpSize];
    std::memcpy(lanes, data.data(), kWarpRegBytes);
    const i64 base = static_cast<i32>(lanes[0]);
    u64 nonzero = 0;
    u32 bad1 = 0, bad2 = 0, bad4 = 0;
    for (u32 i = 1; i < kWarpSize; ++i) {
        const i64 d = static_cast<i32>(lanes[i]) - base;
        nonzero |= static_cast<u64>(d);
        bad1 |= static_cast<u32>(!fitsSigned(d, 1));
        bad2 |= static_cast<u32>(!fitsSigned(d, 2));
        bad4 |= static_cast<u32>(!fitsSigned(d, 4));
    }
    DeltaFits f;
    f.zero = nonzero == 0;
    f.one = bad1 == 0;
    f.two = bad2 == 0;
    f.four = bad4 == 0;
    return f;
}

/** Encode the base-4 candidates (<4,0> <4,1> <4,2>) with one flat pass
 *  writing the payload in place. Byte-identical to the generic
 *  storeBytes loop: deltas store their low little-endian bytes. */
void
encodeBase4(std::span<const u8> data, u32 delta_bytes, BdiByteBuf &out)
{
    u32 lanes[kWarpSize];
    std::memcpy(lanes, data.data(), kWarpRegBytes);
    const i64 base = static_cast<i32>(lanes[0]);
    out.resize(4 + delta_bytes * (kWarpSize - 1));
    u8 *p = out.data();
    std::memcpy(p, &lanes[0], 4);
    p += 4;
    if (delta_bytes == 1) {
        for (u32 i = 1; i < kWarpSize; ++i)
            p[i - 1] = static_cast<u8>(
                static_cast<i32>(lanes[i]) - base);
    } else if (delta_bytes == 2) {
        for (u32 i = 1; i < kWarpSize; ++i) {
            const u16 d = static_cast<u16>(
                static_cast<i32>(lanes[i]) - base);
            std::memcpy(p + 2 * (i - 1), &d, 2);
        }
    }
}

/** Decode a base-4 encoding into the 128-byte image with flat loops. */
void
decodeBase4(const BdiEncoded &enc, std::array<u8, kWarpRegBytes> &out)
{
    u32 lanes[kWarpSize];
    u32 base_raw = 0;
    std::memcpy(&base_raw, enc.bytes.data(), 4);
    const i64 base = static_cast<i32>(base_raw);
    lanes[0] = base_raw;
    const u8 *d = enc.bytes.data() + 4;
    switch (enc.params.deltaBytes) {
      case 0:
        for (u32 i = 1; i < kWarpSize; ++i)
            lanes[i] = base_raw;
        break;
      case 1:
        for (u32 i = 1; i < kWarpSize; ++i)
            lanes[i] = static_cast<u32>(
                base + static_cast<i8>(d[i - 1]));
        break;
      case 2:
        for (u32 i = 1; i < kWarpSize; ++i) {
            u16 raw = 0;
            std::memcpy(&raw, d + 2 * (i - 1), 2);
            lanes[i] = static_cast<u32>(
                base + static_cast<i16>(raw));
        }
        break;
      default:
        WC_PANIC("unsupported base-4 delta width "
                 << enc.params.deltaBytes);
    }
    std::memcpy(out.data(), lanes, kWarpRegBytes);
}

constexpr BdiParams kFullCandidates[] = {
    {4, 0}, {4, 1}, {4, 2}, {8, 0}, {8, 1}, {8, 2}, {8, 4},
};

constexpr BdiParams kWarpedCandidates[] = {
    {4, 0}, {4, 1}, {4, 2},
};

} // namespace

std::span<const BdiParams>
fullBdiCandidates()
{
    return kFullCandidates;
}

std::span<const BdiParams>
warpedCandidates()
{
    return kWarpedCandidates;
}

std::array<u8, kWarpRegBytes>
toBytes(const WarpRegValue &value)
{
    std::array<u8, kWarpRegBytes> out{};
    std::memcpy(out.data(), value.data(), kWarpRegBytes);
    return out;
}

WarpRegValue
fromBytes(std::span<const u8> bytes)
{
    WC_ASSERT(bytes.size() == kWarpRegBytes, "warp register image must be "
              << kWarpRegBytes << " bytes, got " << bytes.size());
    WarpRegValue v{};
    std::memcpy(v.data(), bytes.data(), kWarpRegBytes);
    return v;
}

bool
bdiCompressible(std::span<const u8> data, BdiParams params)
{
    WC_ASSERT(data.size() % params.baseBytes == 0,
              "data not a multiple of the chunk size");
    WC_ASSERT(params.baseBytes == 1 || params.baseBytes == 2 ||
              params.baseBytes == 4 || params.baseBytes == 8,
              "unsupported base size " << params.baseBytes);
    WC_ASSERT(params.deltaBytes < params.baseBytes,
              "delta must be narrower than the base");

    const u32 chunks = static_cast<u32>(data.size()) / params.baseBytes;
    const i64 base = loadChunk(data, 0, params.baseBytes);
    for (u32 i = 1; i < chunks; ++i) {
        const i64 delta = loadChunk(data, i, params.baseBytes) - base;
        if (params.deltaBytes == 0) {
            if (delta != 0)
                return false;
        } else if (!fitsSigned(delta, params.deltaBytes)) {
            return false;
        }
    }
    return true;
}

BdiEncoded
bdiCompress(std::span<const u8> data, std::span<const BdiParams> candidates)
{
    WC_ASSERT(data.size() == kWarpRegBytes,
              "register compression operates on 128-byte warp registers");

    const BdiParams *best = nullptr;
    u32 best_size = kWarpRegBytes;
    // Lazy one scan per base size; candidates sharing a base reuse it.
    std::optional<DeltaFits> fits4, fits8;
    for (const BdiParams &p : candidates) {
        const u32 size = bdiCompressedSize(p);
        if (size >= best_size)
            continue;
        bool ok;
        const bool scannable =
            p.deltaBytes == 0 || p.deltaBytes == 1 ||
            p.deltaBytes == 2 || p.deltaBytes == 4;
        if (p.baseBytes == 4 && scannable) {
            if (!fits4)
                fits4 = scanDeltas4(data);
            ok = fits4->fits(p.deltaBytes);
        } else if (p.baseBytes == 8 && scannable) {
            if (!fits8)
                fits8 = scanDeltas(data, 8);
            ok = fits8->fits(p.deltaBytes);
        } else {
            ok = bdiCompressible(data, p);
        }
        if (ok) {
            best = &p;
            best_size = size;
        }
    }

    BdiEncoded enc;
    if (best == nullptr) {
        enc.compressed = false;
        enc.bytes.assign(data);
        return enc;
    }

    enc.compressed = true;
    enc.params = *best;
    if (best->baseBytes == 4 && best->deltaBytes <= 2) {
        // The warped candidates (<4,0> <4,1> <4,2>) take the flat
        // lane-wise path over the contiguous 32x4B image.
        encodeBase4(data, best->deltaBytes, enc.bytes);
        WC_ASSERT(enc.bytes.size() == best_size,
                  "compressed size mismatch");
        return enc;
    }
    const u32 chunks = kWarpRegBytes / best->baseBytes;
    const i64 base = loadChunk(data, 0, best->baseBytes);
    storeBytes(enc.bytes, base, best->baseBytes);
    for (u32 i = 1; i < chunks; ++i) {
        const i64 delta = loadChunk(data, i, best->baseBytes) - base;
        storeBytes(enc.bytes, delta, best->deltaBytes);
    }
    WC_ASSERT(enc.bytes.size() == best_size, "compressed size mismatch");
    return enc;
}

std::array<u8, kWarpRegBytes>
bdiDecompress(const BdiEncoded &enc)
{
    std::array<u8, kWarpRegBytes> out{};
    if (!enc.compressed) {
        WC_ASSERT(enc.bytes.size() == kWarpRegBytes,
                  "uncompressed payload must be 128 bytes");
        std::memcpy(out.data(), enc.bytes.data(), kWarpRegBytes);
        return out;
    }

    const BdiParams p = enc.params;
    if (p.baseBytes == 4 && p.deltaBytes <= 2) {
        decodeBase4(enc, out);
        return out;
    }
    const u32 chunks = kWarpRegBytes / p.baseBytes;
    const i64 base = loadSigned(enc.bytes.data(), p.baseBytes);
    // Base chunk.
    u64 raw = static_cast<u64>(base);
    std::memcpy(out.data(), &raw, p.baseBytes);
    // Delta chunks.
    for (u32 i = 1; i < chunks; ++i) {
        i64 delta = 0;
        if (p.deltaBytes > 0) {
            delta = loadSigned(enc.bytes.data() + p.baseBytes +
                               (i - 1) * p.deltaBytes, p.deltaBytes);
        }
        raw = static_cast<u64>(base + delta);
        std::memcpy(out.data() + i * p.baseBytes, &raw, p.baseBytes);
    }
    return out;
}

std::optional<BdiParams>
bdiBestParams(std::span<const u8> data, std::span<const BdiParams> candidates)
{
    const BdiParams *best = nullptr;
    u32 best_size = ~0u;
    for (const BdiParams &p : candidates) {
        const u32 size = bdiCompressedSize(
            p, static_cast<u32>(data.size()));
        if (size < best_size && size < data.size() &&
            bdiCompressible(data, p)) {
            best = &p;
            best_size = size;
        }
    }
    if (best == nullptr)
        return std::nullopt;
    return *best;
}

} // namespace warpcomp
