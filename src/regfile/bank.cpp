/**
 * @file
 * BankSet implementation: valid-bit bookkeeping with incremental
 * gated-bank counting, and the per-cycle / closed-form leakage census.
 */

#include "regfile/bank.hpp"

#include <algorithm>

#include "common/bitops.hpp"

namespace warpcomp {

BankSet::BankSet(u32 num_banks, u32 entries, u32 wakeup_latency,
                 bool gating_enabled)
    : entries_(entries)
{
    WC_ASSERT(num_banks > 0 && entries > 0, "degenerate bank geometry");
    gates_.reserve(num_banks);
    for (u32 b = 0; b < num_banks; ++b)
        gates_.emplace_back(wakeup_latency, gating_enabled);
    reads_.assign(num_banks, 0);
    writes_.assign(num_banks, 0);
    lastAccess_.assign(num_banks, 0);
    validCount_.assign(num_banks, 0);
    const u32 clusters = ceilDiv(num_banks, kBanksPerWarpReg);
    validMask_.assign(static_cast<size_t>(clusters) * entries, 0);
    // An enabled PowerGate constructs in the Off state, so every bank
    // starts gated; without gating nothing is ever off.
    offCount_ = gating_enabled ? num_banks : 0;
}

void
BankSet::setValid(u32 bank, u32 entry, bool v, Cycle now)
{
    WC_ASSERT(bank < numBanks() && entry < entries_,
              "bank " << bank << " entry " << entry << " out of range");
    const u32 row = rowOf(bank, entry);
    const u8 bit = static_cast<u8>(1u << (bank % kBanksPerWarpReg));
    const bool cur = (validMask_[row] & bit) != 0;
    if (cur == v)
        return;
    if (v) {
        WC_ASSERT(!gates_[bank].isOff(now),
                  "marking entry " << entry << " valid in gated bank "
                  << bank << "; wake it first");
        validMask_[row] = static_cast<u8>(validMask_[row] | bit);
        ++validCount_[bank];
    } else {
        WC_ASSERT(validCount_[bank] > 0,
                  "valid-count underflow in bank " << bank);
        validMask_[row] = static_cast<u8>(validMask_[row] & ~bit);
        if (--validCount_[bank] == 0) {
            // Last valid entry gone: gate the bank. sleep() no-ops when
            // gating is disabled or the gate is mid-wakeup, so recheck
            // the state before counting it as off.
            const bool was_off = gates_[bank].isOff(now);
            gates_[bank].sleep(now);
            if (!was_off && gates_[bank].isOff(now))
                ++offCount_;
        }
    }
}

Cycle
BankSet::wake(u32 bank, Cycle now)
{
    WC_ASSERT(bank < numBanks(), "bank " << bank << " out of range");
    PowerGate &g = gates_[bank];
    if (g.isOff(now)) {
        WC_ASSERT(offCount_ > 0, "gated-bank count underflow");
        --offCount_;
    }
    return g.wake(now);
}

BankSet::Activity
BankSet::activity(Cycle now, bool drowsy_enabled, u32 drowsy_after) const
{
    Activity act;
    const u32 n = numBanks();
    if (!drowsy_enabled) {
        act.active = n - offCount_;
        return act;
    }
    for (u32 b = 0; b < n; ++b) {
        if (gates_[b].isOff(now))
            continue;
        if (now > lastAccess_[b] + drowsy_after)
            ++act.drowsy;
        else
            ++act.active;
    }
    return act;
}

void
BankSet::activitySpan(Cycle from, Cycle to, bool drowsy_enabled,
                      u32 drowsy_after, u64 &active, u64 &drowsy) const
{
    WC_ASSERT(to >= from, "inverted census span");
    const u64 span = to - from;
    const u32 n = numBanks();
    if (!drowsy_enabled) {
        active += span * (n - offCount_);
        return;
    }
    for (u32 b = 0; b < n; ++b) {
        if (gates_[b].isOff(from))
            continue;
        // A powered bank is active while now <= lastAccess + after and
        // drowsy from active_end on; lastAccess is frozen across the
        // span, so the split is a single clamp.
        const Cycle active_end = lastAccess_[b] + drowsy_after + 1;
        u64 a = 0;
        if (active_end > from)
            a = std::min<u64>(to, active_end) - from;
        active += a;
        drowsy += span - a;
    }
}

} // namespace warpcomp
