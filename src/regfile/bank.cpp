#include "regfile/bank.hpp"

namespace warpcomp {

Bank::Bank(u32 index, u32 entries, u32 wakeup_latency, bool gating_enabled)
    : index_(index), valid_(entries, false),
      gate_(wakeup_latency, gating_enabled)
{
}

} // namespace warpcomp
