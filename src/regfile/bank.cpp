#include "regfile/bank.hpp"

#include "common/log.hpp"

namespace warpcomp {

Bank::Bank(u32 entries, u32 wakeup_latency, bool gating_enabled)
    : valid_(entries, false), gate_(wakeup_latency, gating_enabled)
{
}

bool
Bank::valid(u32 entry) const
{
    WC_ASSERT(entry < valid_.size(), "bank entry out of range");
    return valid_[entry];
}

void
Bank::setValid(u32 entry, bool v, Cycle now)
{
    WC_ASSERT(entry < valid_.size(), "bank entry out of range");
    if (valid_[entry] == v)
        return;
    valid_[entry] = v;
    if (v) {
        WC_ASSERT(!gate_.isOff(now),
                  "marking an entry valid in a gated bank; wake it first");
        ++validCount_;
    } else {
        WC_ASSERT(validCount_ > 0, "valid count underflow");
        --validCount_;
        if (validCount_ == 0)
            gate_.sleep(now);
    }
}

} // namespace warpcomp
