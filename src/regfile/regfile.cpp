#include "regfile/regfile.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace warpcomp {

RegisterFile::RegisterFile(const RegFileParams &params,
                           const FaultParams &faults,
                           const SeuParams &seu)
    : params_(params),
      banks_(params.numBanks, params.entriesPerBank, params.wakeupLatency,
             params.gatingEnabled),
      store_(params.numClusters(), params.entriesPerBank)
{
    WC_ASSERT(params.numBanks % kBanksPerWarpReg == 0,
              "bank count must be a multiple of " << kBanksPerWarpReg);
    WC_ASSERT(params.numBanks > 0 && params.entriesPerBank > 0,
              "degenerate register file");
    regs_.resize(params.totalWarpRegs());
    if (seu.enabled())
        seu_ = std::make_unique<SeuEngine>(*this, seu);

    const u32 total = params.totalWarpRegs();
    faultStats_.totalRegs = total;
    faultStats_.usableRegs = total;
    if (faults.enabled()) {
        faults_ = std::make_unique<FaultMap>(
            params.numBanks, params.entriesPerBank, faults.ber,
            faults.seed);
        faultPolicy_ = faults.policy;
        faultStats_.faultyCells = faults_->faultyCells();

        // Static capacity census under the configured policy: None and
        // DisableEntry can only trust fully healthy stripes, while
        // CompressRemap also salvages stripes whose healthy prefix can
        // still host a compressed register.
        u32 healthy = 0, compress_usable = 0;
        for (u32 id = 0; id < total; ++id) {
            const RegSlot s = slotOf(id);
            const u32 prefix =
                faults_->healthyPrefixBytes(s.firstBank(), s.entry);
            if (prefix == kWarpRegBytes)
                ++healthy;
            if (prefix >= FaultMap::kMinCompressedBytes)
                ++compress_usable;
        }
        faultStats_.usableRegs =
            faultPolicy_ == FaultPolicy::CompressRemap ? compress_usable
                                                       : healthy;

        if (faultPolicy_ == FaultPolicy::DisableEntry) {
            // Faulty stripes leave the allocator entirely; the healthy
            // ids no longer form contiguous ranges, so allocation
            // switches to the explicit free-id list.
            idAlloc_ = true;
            freeIds_.reserve(healthy);
            for (u32 id = 0; id < total; ++id) {
                const RegSlot s = slotOf(id);
                if (!faults_->stripeFaulty(s.firstBank(), s.entry))
                    freeIds_.push_back(id);
            }
            faultStats_.disabledRegs = total - healthy;
            return;
        }
    }
    freeRanges_.emplace_back(0, total);
}

bool
RegisterFile::canAllocate(u32 num_regs) const
{
    if (idAlloc_)
        return freeIds_.size() >= num_regs;
    for (const auto &[base, count] : freeRanges_) {
        (void)base;
        if (count >= num_regs)
            return true;
    }
    return false;
}

bool
RegisterFile::allocate(u32 warp_slot, u32 num_regs, Cycle now)
{
    WC_ASSERT(num_regs > 0, "allocating zero registers");
    if (warp_slot >= slots_.size())
        slots_.resize(warp_slot + 1);
    WC_ASSERT(!slots_[warp_slot].active,
              "warp slot " << warp_slot << " already allocated");

    if (idAlloc_) {
        // DisableEntry mode: hand out the lowest healthy ids. The slot
        // keeps an explicit id list because faulty stripes fragment the
        // id space.
        if (freeIds_.size() < num_regs)
            return false;
        SlotAlloc &slot = slots_[warp_slot];
        slot.ids.assign(freeIds_.begin(), freeIds_.begin() + num_regs);
        freeIds_.erase(freeIds_.begin(), freeIds_.begin() + num_regs);
        slot.base = 0;
        slot.count = num_regs;
        slot.active = true;
        allocatedRegs_ += num_regs;

        if (params_.validAtAlloc) {
            for (u32 id : slot.ids) {
                const RegSlot s = slotOf(id);
                for (u32 b = 0; b < kBanksPerWarpReg; ++b) {
                    banks_.wake(s.firstBank() + b, now);
                    banks_.setValid(s.firstBank() + b, s.entry, true,
                                    now);
                }
            }
        }
        return true;
    }

    for (auto it = freeRanges_.begin(); it != freeRanges_.end(); ++it) {
        if (it->second < num_regs)
            continue;
        const u32 base = it->first;
        it->first += num_regs;
        it->second -= num_regs;
        if (it->second == 0)
            freeRanges_.erase(it);

        slots_[warp_slot].base = base;
        slots_[warp_slot].count = num_regs;
        slots_[warp_slot].active = true;
        allocatedRegs_ += num_regs;

        if (params_.validAtAlloc) {
            // Baseline: every register occupies its full 8-bank stripe
            // from allocation on.
            for (u32 r = 0; r < num_regs; ++r) {
                const RegSlot s = slotOf(base + r);
                for (u32 b = 0; b < kBanksPerWarpReg; ++b) {
                    banks_.wake(s.firstBank() + b, now);
                    banks_.setValid(s.firstBank() + b, s.entry, true,
                                    now);
                }
            }
        }
        return true;
    }
    return false;
}

void
RegisterFile::releaseId(u32 id, Cycle now)
{
    const RegSlot s = slotOf(id);
    // Pending transient flips die with the row's content.
    if (seu_ != nullptr && seu_->hasPending())
        seu_->clearEntry(s.cluster, s.entry);
    store_.clear(rowOf(s));
    // Valid entries of a register form a prefix of its bank stripe:
    // recordWrite sets banks [0, footprint) and clears the rest (all
    // 8 under validAtAlloc). Probing only the prefix makes teardown
    // proportional to the compressed footprint, not the stripe.
    const u32 nb = params_.validAtAlloc ? kBanksPerWarpReg
                                        : footprintBanks(id);
    for (u32 b = 0; b < nb; ++b) {
        const u32 bank = s.firstBank() + b;
        if (banks_.valid(bank, s.entry)) {
            banks_.setValid(bank, s.entry, false, now);
            // A bank holding valid data cannot have been gated, so an
            // off gate here means this invalidation just gated it.
            if (obs_ != nullptr && banks_.isOff(bank, now))
                obs_->onGateOff(smId_, static_cast<u16>(bank), now);
        }
    }
    if (regs_[id].written) {
        --writtenCount_;
        if (regs_[id].ind != RangeIndicator::Uncompressed)
            --compressedCount_;
    }
    regs_[id] = RegState{};
}

void
RegisterFile::release(u32 warp_slot, Cycle now)
{
    WC_ASSERT(warp_slot < slots_.size() && slots_[warp_slot].active,
              "releasing inactive warp slot " << warp_slot);
    SlotAlloc &slot = slots_[warp_slot];

    if (idAlloc_) {
        for (u32 id : slot.ids)
            releaseId(id, now);
        // Merge the slot's (ascending) ids back into the sorted free
        // list. Launch/teardown path: allocation here is fine.
        const std::size_t mid = freeIds_.size();
        freeIds_.insert(freeIds_.end(), slot.ids.begin(),
                        slot.ids.end());
        std::inplace_merge(freeIds_.begin(),
                           freeIds_.begin() + static_cast<long>(mid),
                           freeIds_.end());
        WC_ASSERT(allocatedRegs_ >= slot.count, "allocation underflow");
        allocatedRegs_ -= slot.count;
        slot.ids.clear();
        slot.base = 0;
        slot.count = 0;
        slot.active = false;
        return;
    }

    for (u32 r = 0; r < slot.count; ++r)
        releaseId(slot.base + r, now);

    // Return the range, keeping the free list sorted and coalesced.
    auto pos = std::lower_bound(
        freeRanges_.begin(), freeRanges_.end(),
        std::make_pair(slot.base, 0u),
        [](const auto &a, const auto &b) { return a.first < b.first; });
    pos = freeRanges_.insert(pos, {slot.base, slot.count});
    // Coalesce with successor, then predecessor.
    if (auto next = std::next(pos); next != freeRanges_.end() &&
        pos->first + pos->second == next->first) {
        pos->second += next->second;
        freeRanges_.erase(next);
    }
    if (pos != freeRanges_.begin()) {
        auto prev = std::prev(pos);
        if (prev->first + prev->second == pos->first) {
            prev->second += pos->second;
            freeRanges_.erase(pos);
        }
    }

    WC_ASSERT(allocatedRegs_ >= slot.count, "allocation underflow");
    allocatedRegs_ -= slot.count;
    slot = SlotAlloc{};
}

u32
RegisterFile::regId(u32 warp_slot, u32 reg) const
{
    WC_ASSERT(warp_slot < slots_.size() && slots_[warp_slot].active,
              "access to inactive warp slot " << warp_slot);
    const SlotAlloc &slot = slots_[warp_slot];
    WC_ASSERT(reg < slot.count, "register r" << reg
              << " beyond slot allocation of " << slot.count);
    return idAlloc_ ? slot.ids[reg] : slot.base + reg;
}

RegSlot
RegisterFile::slotOf(u32 id) const
{
    const u32 clusters = params_.numClusters();
    return RegSlot{id % clusters, id / clusters};
}

RegSlot
RegisterFile::locate(u32 warp_slot, u32 reg) const
{
    return slotOf(regId(warp_slot, reg));
}

RangeIndicator
RegisterFile::indicator(u32 warp_slot, u32 reg) const
{
    return regs_[regId(warp_slot, reg)].ind;
}

bool
RegisterFile::isCompressed(u32 warp_slot, u32 reg) const
{
    const RegState &st = regs_[regId(warp_slot, reg)];
    return st.written && st.ind != RangeIndicator::Uncompressed;
}

bool
RegisterFile::isWritten(u32 warp_slot, u32 reg) const
{
    return regs_[regId(warp_slot, reg)].written;
}

u32
RegisterFile::footprintBanks(u32 id) const
{
    const RegState &st = regs_[id];
    if (st.written)
        return indicatorBanks(st.ind);
    return params_.validAtAlloc ? kBanksPerWarpReg : 0;
}

RegAccess
RegisterFile::readAccess(u32 warp_slot, u32 reg) const
{
    const u32 id = regId(warp_slot, reg);
    const RegSlot s = slotOf(id);
    const RegState &st = regs_[id];

    RegAccess a;
    a.firstBank = s.firstBank();
    a.entry = s.entry;
    a.numBanks = footprintBanks(id);
    a.compressed = st.written && st.ind != RangeIndicator::Uncompressed;
    a.bytes = st.written ? indicatorBytes(st.ind)
                         : (params_.validAtAlloc ? kWarpRegBytes : 0);
    a.remapped = st.written && st.remapped;
    return a;
}

std::pair<Cycle, RegAccess>
RegisterFile::recordWrite(u32 warp_slot, u32 reg, const BdiEncoded &enc,
                          Cycle now)
{
    const u32 id = regId(warp_slot, reg);
    const RegSlot s = slotOf(id);
    RegState &st = regs_[id];

    // A write replaces the whole row (data and, in the ECC schemes,
    // freshly encoded check bits): accumulated flips are gone. This is
    // also what gives ECC its correct no-detection-if-overwritten
    // semantics.
    if (seu_ != nullptr && seu_->hasPending())
        seu_->clearEntry(s.cluster, s.entry);

    const u32 old_banks = footprintBanks(id);
    const RangeIndicator ind = indicatorFor(enc);
    const u32 new_banks = params_.validAtAlloc ? kBanksPerWarpReg
                                               : indicatorBanks(ind);

    // CompressRemap (RRCD-style): a faulty stripe still hosts the
    // register when the encoded form lies entirely inside the healthy
    // leading bytes; otherwise the write is redirected to a healthy
    // spare entry through the remap table. Either way no corruption can
    // occur. The spare's bank traffic is modeled on the home stripe
    // (same footprint), only the remap-table traffic is extra.
    bool remapped = false;
    if (faults_ != nullptr &&
        faultPolicy_ == FaultPolicy::CompressRemap) {
        const u32 healthy =
            faults_->healthyPrefixBytes(s.firstBank(), s.entry);
        if (healthy < kWarpRegBytes) {
            if (enc.sizeBytes() <= healthy) {
                ++faultStats_.toleratedWrites;
            } else {
                remapped = true;
                ++faultStats_.remapWrites;
            }
        }
    }

    // Wake every bank the write touches; the write completes when the
    // slowest wakeup finishes.
    Cycle ready = now;
    for (u32 b = 0; b < new_banks; ++b) {
        const u32 bank = s.firstBank() + b;
        const bool was_off = banks_.isOff(bank, now);
        ready = std::max(ready, banks_.wake(bank, now));
        if (was_off && obs_ != nullptr)
            obs_->onGateWake(smId_, static_cast<u16>(bank),
                             banks_.gate(bank).wakeupLatency(), now);
    }
    for (u32 b = 0; b < new_banks; ++b) {
        const u32 bank = s.firstBank() + b;
        banks_.noteWrite(bank, now);
        banks_.setValid(bank, s.entry, true, now);
    }
    // A shrinking footprint frees the banks beyond the new extent.
    for (u32 b = new_banks; b < old_banks; ++b) {
        const u32 bank = s.firstBank() + b;
        if (banks_.valid(bank, s.entry)) {
            banks_.setValid(bank, s.entry, false, now);
            if (obs_ != nullptr && banks_.isOff(bank, now))
                obs_->onGateOff(smId_, static_cast<u16>(bank), now);
        }
    }

    // The banks now hold exactly this encoding (fidelity invariant).
    store_.store(rowOf(s), enc);

    if (!st.written) {
        ++writtenCount_;
        if (ind != RangeIndicator::Uncompressed)
            ++compressedCount_;
    } else {
        const bool was = st.ind != RangeIndicator::Uncompressed;
        const bool is = ind != RangeIndicator::Uncompressed;
        if (was && !is)
            --compressedCount_;
        else if (!was && is)
            ++compressedCount_;
    }
    st.written = true;
    st.ind = ind;
    st.remapped = remapped;

    RegAccess a;
    a.firstBank = s.firstBank();
    a.entry = s.entry;
    a.numBanks = new_banks;
    a.compressed = ind != RangeIndicator::Uncompressed;
    a.bytes = enc.sizeBytes();
    a.remapped = remapped;
    return {ready, a};
}

BdiEncoded
RegisterFile::storedEncoding(u32 warp_slot, u32 reg) const
{
    const RegSlot s = locate(warp_slot, reg);
    WC_ASSERT(regs_[regId(warp_slot, reg)].written,
              "stored encoding of an unwritten register");
    return store_.load(rowOf(s));
}

void
RegisterFile::refreshStored(u32 warp_slot, u32 reg,
                            const BdiEncoded &enc)
{
    const RegSlot s = locate(warp_slot, reg);
    store_.store(rowOf(s), enc);
}

RegisterFile::EntryExtent
RegisterFile::entryExtent(u32 cluster, u32 entry) const
{
    const u32 id = entry * params_.numClusters() + cluster;
    const RegState &st = regs_[id];
    if (st.written)
        return {indicatorBytes(st.ind),
                st.ind != RangeIndicator::Uncompressed};
    // Baseline (validAtAlloc): an allocated register exposes its full
    // stripe from allocation on, written or not — the bank valid bit
    // is the allocation witness. The compressed design only ever
    // exposes written bytes, which is the cross-section shrinkage the
    // SEU sweep measures.
    if (params_.validAtAlloc &&
        banks_.valid(cluster * kBanksPerWarpReg, entry))
        return {kWarpRegBytes, false};
    return {};
}

void
RegisterFile::noteRead(const RegAccess &access, Cycle now)
{
    for (u32 b = 0; b < access.numBanks; ++b)
        banks_.noteRead(access.firstBank + b, now);
}

RegisterFile::BankActivity
RegisterFile::bankActivity(Cycle now) const
{
    const BankSet::Activity act = banks_.activity(
        now, params_.drowsyEnabled, params_.drowsyAfterCycles);
    return BankActivity{act.active, act.drowsy};
}

void
RegisterFile::activitySpan(Cycle from, Cycle to, u64 &active,
                           u64 &drowsy) const
{
    banks_.activitySpan(from, to, params_.drowsyEnabled,
                        params_.drowsyAfterCycles, active, drowsy);
}

u64
RegisterFile::gatedCycles(u32 bank, Cycle now) const
{
    WC_ASSERT(bank < banks_.numBanks(), "bank index out of range");
    return banks_.gatedCycles(bank, now);
}

} // namespace warpcomp
