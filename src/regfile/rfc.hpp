/**
 * @file
 * Register-file-cache comparator (Gebhart et al., ISCA'11 — reference
 * [21] of the paper): a small per-warp LRU cache in front of the main
 * register banks. Writes allocate (write-through keeps the banks
 * authoritative); operand reads that hit skip every bank access.
 */

#ifndef WARPCOMP_REGFILE_RFC_HPP
#define WARPCOMP_REGFILE_RFC_HPP

#include <vector>

#include "common/types.hpp"

namespace warpcomp {

/** Per-warp LRU register cache. */
class RegFileCache
{
  public:
    /**
     * @param max_warps warp slots on the SM
     * @param entries_per_warp cache capacity per warp; 0 disables
     */
    RegFileCache(u32 max_warps, u32 entries_per_warp);

    bool enabled() const { return entriesPerWarp_ > 0; }
    u32 entriesPerWarp() const { return entriesPerWarp_; }

    /** Lookup; refreshes LRU position on hit. */
    bool lookup(u32 warp, u8 reg);

    /** Allocate on write; evicts the LRU entry when full. */
    void fill(u32 warp, u8 reg);

    /** Drop every entry of a warp (slot teardown / relaunch). */
    void clearWarp(u32 warp);

    u64 hits() const { return hits_; }
    u64 misses() const { return misses_; }

    double
    hitRate() const
    {
        const u64 total = hits_ + misses_;
        return total == 0 ? 0.0
                          : static_cast<double>(hits_) /
                                static_cast<double>(total);
    }

  private:
    u32 entriesPerWarp_;
    /** Front = most recently used. */
    std::vector<std::vector<u8>> lru_;
    u64 hits_ = 0;
    u64 misses_ = 0;
};

} // namespace warpcomp

#endif // WARPCOMP_REGFILE_RFC_HPP
