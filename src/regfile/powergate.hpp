/**
 * @file
 * Per-bank power-gating state machine (Sec. 5.3): ON -> OFF when a bank
 * holds no valid data, OFF -> WAKING(wakeup latency) -> ON when a write
 * needs the bank. Tracks cumulative gated cycles for Fig 10.
 */

#ifndef WARPCOMP_REGFILE_POWERGATE_HPP
#define WARPCOMP_REGFILE_POWERGATE_HPP

#include "common/types.hpp"

namespace warpcomp {

/** Power state of one register bank. */
class PowerGate
{
  public:
    enum class State : u8 { On, Off, Waking };

    /**
     * @param wakeup_latency cycles from wake request to usability
     * @param enabled when false the bank never gates (baseline)
     */
    PowerGate(u32 wakeup_latency, bool enabled);

    /** Current state, resolving an elapsed wakeup to On. */
    State
    state(Cycle now) const
    {
        if (state_ == State::Waking && now >= wakeReady_)
            return State::On;
        return state_;
    }

    /** True when the bank is fully gated at @p now. */
    bool isOff(Cycle now) const { return state(now) == State::Off; }

    /** Gate the bank; no-op when disabled or already off/waking. */
    void sleep(Cycle now);

    /**
     * Ensure the bank is powered; returns the first cycle it is usable
     * (now when already on, now + wakeup latency when it was off).
     */
    Cycle wake(Cycle now);

    /** Cumulative fully-gated cycles up to @p now. */
    u64 gatedCycles(Cycle now) const;

    u32 wakeupLatency() const { return wakeupLatency_; }

  private:
    u32 wakeupLatency_;
    bool enabled_;
    State state_ = State::On;
    Cycle offSince_ = 0;
    Cycle wakeReady_ = 0;
    u64 accumOff_ = 0;
};

} // namespace warpcomp

#endif // WARPCOMP_REGFILE_POWERGATE_HPP
