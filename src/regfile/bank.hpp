/**
 * @file
 * One SRAM register bank: 256 entries x 128 bit, one read and one write
 * port, a valid bit per entry, and a power gate (Table 2 / Sec. 5.3).
 */

#ifndef WARPCOMP_REGFILE_BANK_HPP
#define WARPCOMP_REGFILE_BANK_HPP

#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"
#include "regfile/powergate.hpp"

namespace warpcomp {

/** A single register bank. */
class Bank
{
  public:
    /**
     * @param index global bank id (only used to coordinate diagnostics)
     * @param entries rows in the bank
     * @param wakeup_latency power-gate wakeup cycles
     * @param gating_enabled false for the baseline configuration
     */
    Bank(u32 index, u32 entries, u32 wakeup_latency, bool gating_enabled);

    u32 index() const { return index_; }
    u32 entries() const { return static_cast<u32>(valid_.size()); }
    u32 validCount() const { return validCount_; }

    bool
    valid(u32 entry) const
    {
        WC_ASSERT(entry < valid_.size(),
                  "bank " << index_ << " entry " << entry
                  << " out of range (" << valid_.size() << " entries)");
        return valid_[entry];
    }

    /**
     * Mark one entry valid/invalid. Gates the bank when the last valid
     * entry disappears. Marking an entry valid requires the bank to be
     * powered; the caller wakes it first (see RegisterFile::recordWrite).
     */
    void
    setValid(u32 entry, bool v, Cycle now)
    {
        WC_ASSERT(entry < valid_.size(),
                  "bank " << index_ << " entry " << entry
                  << " out of range (" << valid_.size() << " entries)");
        if (valid_[entry] == v)
            return;
        valid_[entry] = v;
        if (v) {
            WC_ASSERT(!gate_.isOff(now),
                      "marking entry " << entry << " valid in gated bank "
                      << index_ << "; wake it first");
            ++validCount_;
        } else {
            WC_ASSERT(validCount_ > 0,
                      "valid count underflow in bank " << index_
                      << " (entry " << entry << ")");
            --validCount_;
            if (validCount_ == 0)
                gate_.sleep(now);
        }
    }

    PowerGate &gate() { return gate_; }
    const PowerGate &gate() const { return gate_; }

    /** Access counters (reads/writes of this bank, for stats) and the
     *  last-access timestamp driving the drowsy-mode comparator. */
    void
    noteRead(Cycle now)
    {
        ++reads_;
        lastAccess_ = now;
    }

    void
    noteWrite(Cycle now)
    {
        ++writes_;
        lastAccess_ = now;
    }

    u64 reads() const { return reads_; }
    u64 writes() const { return writes_; }

    /** Cycle of the most recent read or write. */
    Cycle lastAccess() const { return lastAccess_; }

  private:
    u32 index_;
    std::vector<bool> valid_;
    u32 validCount_ = 0;
    PowerGate gate_;
    u64 reads_ = 0;
    u64 writes_ = 0;
    Cycle lastAccess_ = 0;
};

} // namespace warpcomp

#endif // WARPCOMP_REGFILE_BANK_HPP
