/**
 * @file
 * Structure-of-arrays state for every SRAM register bank of one SM:
 * power gates, access counters, and per-entry valid bits packed as one
 * byte per (cluster, entry) row so the 8 valid bits of a warp-register
 * stripe live contiguously (Table 2 / Sec. 5.3).
 *
 * The SoA layout replaces the old per-Bank object array. What it buys:
 * the per-cycle leakage census is O(1) through an incrementally
 * maintained count of fully-gated banks, stripe teardown probes one
 * packed mask byte instead of eight vector<bool> bits, and the drowsy
 * comparator scans a flat timestamp array.
 */

#ifndef WARPCOMP_REGFILE_BANK_HPP
#define WARPCOMP_REGFILE_BANK_HPP

#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"
#include "regfile/powergate.hpp"

namespace warpcomp {

/** All register banks of one SM, stored structure-of-arrays. */
class BankSet
{
  public:
    /**
     * @param num_banks banks in the file
     * @param entries rows per bank
     * @param wakeup_latency power-gate wakeup cycles
     * @param gating_enabled false for the baseline configuration
     */
    BankSet(u32 num_banks, u32 entries, u32 wakeup_latency,
            bool gating_enabled);

    u32 numBanks() const { return static_cast<u32>(gates_.size()); }
    u32 entries() const { return entries_; }

    bool
    valid(u32 bank, u32 entry) const
    {
        WC_ASSERT(bank < numBanks() && entry < entries_,
                  "bank " << bank << " entry " << entry
                  << " out of range");
        return (validMask_[rowOf(bank, entry)] >>
                (bank % kBanksPerWarpReg)) & 1u;
    }

    /** Packed valid bits of one warp-register stripe: bit b is bank
     *  cluster*8+b. The stripe's 8 bits live in one byte — release and
     *  SEU extent probes read it in one load. */
    u8
    validMask(u32 cluster, u32 entry) const
    {
        WC_ASSERT(cluster * entries_ + entry < validMask_.size(),
                  "stripe (" << cluster << ", " << entry
                  << ") out of range");
        return validMask_[cluster * entries_ + entry];
    }

    u32 validCount(u32 bank) const { return validCount_[bank]; }

    /**
     * Mark one entry valid/invalid. Gates the bank when the last valid
     * entry disappears. Marking an entry valid requires the bank to be
     * powered; the caller wakes it first (see RegisterFile::recordWrite).
     */
    void setValid(u32 bank, u32 entry, bool v, Cycle now);

    const PowerGate &gate(u32 bank) const { return gates_[bank]; }
    bool isOff(u32 bank, Cycle now) const
    {
        return gates_[bank].isOff(now);
    }

    /**
     * Ensure a bank is powered; returns the first usable cycle. All
     * wake-ups route through here (never the raw PowerGate) so the
     * gated-bank count stays exact.
     */
    Cycle wake(u32 bank, Cycle now);

    u64 gatedCycles(u32 bank, Cycle now) const
    {
        return gates_[bank].gatedCycles(now);
    }

    /** Access counters (per-bank read/write totals for stats) and the
     *  last-access timestamp driving the drowsy-mode comparator. */
    void
    noteRead(u32 bank, Cycle now)
    {
        ++reads_[bank];
        lastAccess_[bank] = now;
    }

    void
    noteWrite(u32 bank, Cycle now)
    {
        ++writes_[bank];
        lastAccess_[bank] = now;
    }

    u64 reads(u32 bank) const { return reads_[bank]; }
    u64 writes(u32 bank) const { return writes_[bank]; }
    Cycle lastAccess(u32 bank) const { return lastAccess_[bank]; }

    /** Fully-gated banks right now. Gating transitions only happen in
     *  setValid/wake, so this is a plain counter, not a scan. */
    u32 offCount() const { return offCount_; }

    /** Per-cycle leakage census. */
    struct Activity
    {
        u32 active = 0;     ///< powered and recently accessed
        u32 drowsy = 0;     ///< powered, idle past the drowsy threshold
    };

    /** Census at @p now: O(1) without drowsy mode, one flat scan with. */
    Activity activity(Cycle now, bool drowsy_enabled,
                      u32 drowsy_after) const;

    /**
     * Closed-form census over the uneventful span [from, to): no gate
     * or access-timestamp transition can occur inside a skipped span
     * (nothing issues, writes, or releases), so each bank contributes
     * a contiguous active prefix up to its drowsy threshold and drowsy
     * cycles after. Accumulates into @p active / @p drowsy exactly what
     * per-cycle activity() calls would have summed.
     */
    void activitySpan(Cycle from, Cycle to, bool drowsy_enabled,
                      u32 drowsy_after, u64 &active, u64 &drowsy) const;

  private:
    u32
    rowOf(u32 bank, u32 entry) const
    {
        return (bank / kBanksPerWarpReg) * entries_ + entry;
    }

    u32 entries_;
    std::vector<PowerGate> gates_;
    std::vector<u64> reads_;
    std::vector<u64> writes_;
    std::vector<Cycle> lastAccess_;
    std::vector<u32> validCount_;
    /** One byte per (cluster, entry) row; bit b = bank cluster*8+b. */
    std::vector<u8> validMask_;
    u32 offCount_ = 0;
};

} // namespace warpcomp

#endif // WARPCOMP_REGFILE_BANK_HPP
