#include "regfile/powergate.hpp"

#include "common/log.hpp"

namespace warpcomp {

PowerGate::PowerGate(u32 wakeup_latency, bool enabled)
    : wakeupLatency_(wakeup_latency), enabled_(enabled)
{
    // A gating-capable bank holds no valid data at reset, so it starts
    // gated; the first write pays the wakeup. Baseline banks stay on.
    if (enabled_) {
        state_ = State::Off;
        offSince_ = 0;
    }
}

void
PowerGate::sleep(Cycle now)
{
    if (!enabled_)
        return;
    if (state(now) != State::On)
        return;
    state_ = State::Off;
    offSince_ = now;
}

Cycle
PowerGate::wake(Cycle now)
{
    switch (state(now)) {
      case State::On:
        state_ = State::On;
        return now;
      case State::Waking:
        // A wake is already in flight; latch onto it.
        return wakeReady_;
      case State::Off:
        WC_ASSERT(now >= offSince_, "time went backwards in power gate");
        accumOff_ += now - offSince_;
        state_ = State::Waking;
        wakeReady_ = now + wakeupLatency_;
        return wakeReady_;
      default:
        WC_PANIC("unreachable power gate state");
    }
}

u64
PowerGate::gatedCycles(Cycle now) const
{
    u64 total = accumOff_;
    if (state_ == State::Off && now > offSince_)
        total += now - offSince_;
    return total;
}

} // namespace warpcomp
