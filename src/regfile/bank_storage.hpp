/**
 * @file
 * SoA payload storage for the register banks: one contiguous 128-byte
 * row per (cluster, entry) warp-register stripe plus a stored-encoding
 * descriptor (size and BDI parameters). The 32 4-byte lanes of a warp
 * register occupy consecutive bytes of one row, so the BDI codec and
 * the SEU flip machinery run straight-line passes over a single buffer
 * instead of strided walks across bank objects.
 *
 * The row holds exactly the bytes the banks would store physically:
 * the BDI-encoded image for compressed registers, the raw 128-byte
 * image otherwise. RegisterFile::recordWrite refreshes it on every
 * writeback, and the corruption paths re-store after mutating
 * architectural state, so the row always matches the encoding of the
 * current architectural value (the stored-payload fidelity invariant
 * the SEU fast path relies on).
 */

#ifndef WARPCOMP_REGFILE_BANK_STORAGE_HPP
#define WARPCOMP_REGFILE_BANK_STORAGE_HPP

#include <cstring>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"
#include "compress/bdi.hpp"

namespace warpcomp {

/** Contiguous stored-byte rows for every warp-register stripe. */
class BankStorage
{
  public:
    BankStorage(u32 clusters, u32 entries)
    {
        WC_ASSERT(clusters > 0 && entries > 0,
                  "degenerate storage geometry");
        meta_.assign(static_cast<size_t>(clusters) * entries, StoredMeta{});
        payload_.assign(meta_.size() * kWarpRegBytes, 0);
    }

    u32 rows() const { return static_cast<u32>(meta_.size()); }

    /** True once store() ran for the row (cleared on release). */
    bool
    hasStored(u32 row) const
    {
        WC_ASSERT(row < rows(), "row " << row << " out of range");
        return meta_[row].size != 0;
    }

    /** Record the encoded image a writeback (or corruption commit)
     *  leaves in the banks. */
    void
    store(u32 row, const BdiEncoded &enc)
    {
        WC_ASSERT(row < rows(), "row " << row << " out of range");
        const u32 size = enc.sizeBytes();
        WC_ASSERT(size > 0 && size <= kWarpRegBytes,
                  "stored size " << size << " out of range");
        meta_[row] = StoredMeta{
            static_cast<u8>(size),
            static_cast<u8>(enc.params.baseBytes),
            static_cast<u8>(enc.params.deltaBytes),
            static_cast<u8>(enc.compressed ? 1 : 0),
        };
        std::memcpy(&payload_[static_cast<size_t>(row) * kWarpRegBytes],
                    enc.bytes.data(), size);
    }

    /** Reconstruct the stored encoding (descriptor + payload bytes). */
    BdiEncoded
    load(u32 row) const
    {
        WC_ASSERT(row < rows() && meta_[row].size != 0,
                  "loading empty row " << row);
        const StoredMeta &m = meta_[row];
        BdiEncoded enc;
        enc.params = BdiParams{m.baseBytes, m.deltaBytes};
        enc.compressed = m.compressed != 0;
        const u8 *p =
            &payload_[static_cast<size_t>(row) * kWarpRegBytes];
        enc.bytes.assign(std::span<const u8>(p, m.size));
        return enc;
    }

    void
    clear(u32 row)
    {
        WC_ASSERT(row < rows(), "row " << row << " out of range");
        meta_[row] = StoredMeta{};
    }

  private:
    /** Descriptor of the bytes a row currently holds; size 0 = empty.
     *  Kept separate from the RegState indicator because a corrupted
     *  re-encode may go uncompressed while the allocation footprint
     *  (and indicator) still reflect the original compressed write. */
    struct StoredMeta
    {
        u8 size = 0;
        u8 baseBytes = 0;
        u8 deltaBytes = 0;
        u8 compressed = 0;
    };

    std::vector<StoredMeta> meta_;
    std::vector<u8> payload_;
};

} // namespace warpcomp

#endif // WARPCOMP_REGFILE_BANK_STORAGE_HPP
