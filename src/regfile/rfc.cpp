#include "regfile/rfc.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace warpcomp {

RegFileCache::RegFileCache(u32 max_warps, u32 entries_per_warp)
    : entriesPerWarp_(entries_per_warp), lru_(max_warps)
{
    for (auto &set : lru_)
        set.reserve(entries_per_warp);
}

bool
RegFileCache::lookup(u32 warp, u8 reg)
{
    if (!enabled())
        return false;
    WC_ASSERT(warp < lru_.size(), "warp slot out of range");
    auto &set = lru_[warp];
    auto it = std::find(set.begin(), set.end(), reg);
    if (it == set.end()) {
        ++misses_;
        return false;
    }
    // Move to the MRU position.
    set.erase(it);
    set.insert(set.begin(), reg);
    ++hits_;
    return true;
}

void
RegFileCache::fill(u32 warp, u8 reg)
{
    if (!enabled())
        return;
    WC_ASSERT(warp < lru_.size(), "warp slot out of range");
    auto &set = lru_[warp];
    auto it = std::find(set.begin(), set.end(), reg);
    if (it != set.end())
        set.erase(it);
    else if (set.size() >= entriesPerWarp_)
        set.pop_back();                 // evict LRU (write-through: no
                                        // writeback traffic)
    set.insert(set.begin(), reg);
}

void
RegFileCache::clearWarp(u32 warp)
{
    if (!enabled())
        return;
    WC_ASSERT(warp < lru_.size(), "warp slot out of range");
    lru_[warp].clear();
}

} // namespace warpcomp
