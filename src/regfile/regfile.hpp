/**
 * @file
 * The banked GPU register file (Fig 1 / Table 2): 32 banks organized as
 * 4 clusters of 8, warp registers allocated on the 8 consecutive banks of
 * one cluster at one entry index, with per-register compression state
 * (the 2-bit range indicator of Sec. 4) and bank-level power gating.
 *
 * Bank state lives structure-of-arrays in a BankSet, and the stored
 * payload bytes of every stripe live contiguously in a BankStorage row,
 * so the hot paths (census, SEU resolution, release probing) are flat
 * array passes.
 */

#ifndef WARPCOMP_REGFILE_REGFILE_HPP
#define WARPCOMP_REGFILE_REGFILE_HPP

#include <memory>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "compress/schemes.hpp"
#include "fault/fault.hpp"
#include "fault/seu.hpp"
#include "obs/obs.hpp"
#include "regfile/bank.hpp"
#include "regfile/bank_storage.hpp"

namespace warpcomp {

/** Register file organization and policy parameters. */
struct RegFileParams
{
    u32 numBanks = 32;
    u32 entriesPerBank = 256;
    u32 wakeupLatency = 10;
    /** Power gating only exists in the compressed design. */
    bool gatingEnabled = true;
    /**
     * Baseline behaviour: a register occupies all 8 banks from
     * allocation, removing every gating opportunity (Sec. 6.2).
     */
    bool validAtAlloc = false;
    /**
     * Drowsy-mode comparator (the paper's related work [9], Warped
     * Register File): a bank idle for `drowsyAfterCycles` drops to a
     * state-retentive low-leakage mode. Orthogonal to power gating and
     * composable with compression.
     */
    bool drowsyEnabled = false;
    u32 drowsyAfterCycles = 64;

    u32 numClusters() const { return numBanks / kBanksPerWarpReg; }
    u32 totalWarpRegs() const { return numClusters() * entriesPerBank; }
};

/** Physical location of one warp register. */
struct RegSlot
{
    u32 cluster;
    u32 entry;

    /** Global index of the first bank of the cluster. */
    u32 firstBank() const { return cluster * kBanksPerWarpReg; }
};

/** Bank footprint of one register access. */
struct RegAccess
{
    u32 firstBank = 0;      ///< global id of the first bank touched
    u32 numBanks = 0;       ///< banks accessed (0: register never written)
    u32 entry = 0;          ///< row within each bank
    u32 bytes = 0;          ///< payload bytes moved over the wires
    bool compressed = false;
    /** Access goes through the fault-remap table (CompressRemap). */
    bool remapped = false;
};

/**
 * The register file. Warp slots allocate a contiguous range of warp
 * registers at block launch and release it at block completion; ids
 * interleave across clusters (id % clusters) so consecutive registers
 * spread over banks exactly as the baseline design requires.
 */
class RegisterFile
{
  public:
    /**
     * @param params organization and policy parameters
     * @param faults fault-injection configuration; when enabled, a
     *   deterministic FaultMap is generated from faults.seed and the
     *   configured tolerance policy governs allocation and writes
     * @param seu transient-fault configuration; when enabled, a
     *   deterministic SeuEngine accumulates per-cycle bit flips over
     *   the live bank rows (see fault/seu.hpp)
     */
    explicit RegisterFile(const RegFileParams &params,
                          const FaultParams &faults = {},
                          const SeuParams &seu = {});

    const RegFileParams &params() const { return params_; }

    /**
     * Attach shared observability state (nullptr detaches): bank
     * power-gate transitions are emitted from the release/write paths,
     * where gating decisions actually happen.
     */
    void
    attachObs(ObsRun *obs, u16 sm_id)
    {
        obs_ = obs;
        smId_ = sm_id;
    }

    /** The SEU engine, or nullptr when transient injection is disabled
     *  (the null check is the hot-path fast path). */
    SeuEngine *seu() { return seu_.get(); }
    const SeuEngine *seu() const { return seu_.get(); }

    /** Live stored bytes of one bank row, as the SEU process sees it. */
    struct EntryExtent
    {
        u32 bytes = 0;          ///< 0: nothing stored (flips masked)
        bool compressed = false;
    };

    /**
     * Extent of row (cluster, entry): the stored byte count of the
     * register living there (its compressed encoding, or the full 128
     * bytes; under validAtAlloc an allocated-but-unwritten register
     * already exposes the whole stripe), or 0 when the row holds
     * nothing a flip could touch.
     */
    EntryExtent entryExtent(u32 cluster, u32 entry) const;

    /** The stuck-at fault map, or nullptr when injection is disabled
     *  (the null check is the hot-path fast path). */
    const FaultMap *faultMap() const { return faults_.get(); }
    FaultPolicy faultPolicy() const { return faultPolicy_; }

    /** Fault-tolerance counters (static census + runtime traffic). */
    const FaultStats &faultStats() const { return faultStats_; }

    /** Count one write whose stored image was changed by stuck cells
     *  (policy None; detected by the SM at writeback commit). */
    void noteCorruptedWrite() { ++faultStats_.corruptedWrites; }

    /** Count one operand read served through the remap table. */
    void noteRemapRead() { ++faultStats_.remapReads; }

    /** True when @p num_regs warp registers can still be allocated. */
    bool canAllocate(u32 num_regs) const;

    /**
     * Allocate @p num_regs contiguous warp registers for @p warp_slot.
     * Returns false when capacity or the slot is unavailable.
     */
    bool allocate(u32 warp_slot, u32 num_regs, Cycle now);

    /** Release a slot's registers and invalidate their bank entries. */
    void release(u32 warp_slot, Cycle now);

    /** Physical location of (slot, architectural register). */
    RegSlot locate(u32 warp_slot, u32 reg) const;

    /** Current range indicator of a register. */
    RangeIndicator indicator(u32 warp_slot, u32 reg) const;

    /** True when the register currently holds compressed data. */
    bool isCompressed(u32 warp_slot, u32 reg) const;

    /** True when the register has been written since allocation. */
    bool isWritten(u32 warp_slot, u32 reg) const;

    /** Footprint a read of this register touches right now. */
    RegAccess readAccess(u32 warp_slot, u32 reg) const;

    /**
     * Record a write with compression outcome @p enc. Updates valid
     * bits, shrinks/grows the footprint, wakes gated banks the write
     * needs, bumps bank write counters, and stores the encoded payload
     * bytes into the stripe's storage row. Returns the cycle the write
     * can complete (now, or later when a wakeup was required) and the
     * resulting access footprint.
     */
    std::pair<Cycle, RegAccess> recordWrite(u32 warp_slot, u32 reg,
                                            const BdiEncoded &enc,
                                            Cycle now);

    /**
     * The encoding the banks currently hold for a written register
     * (descriptor + payload bytes). Invariant: equal to re-encoding the
     * current architectural value — recordWrite stores it and the
     * corruption-commit paths refresh it.
     */
    BdiEncoded storedEncoding(u32 warp_slot, u32 reg) const;

    /** Re-store a row after a corruption commit mutated architectural
     *  state, preserving the stored-payload fidelity invariant. */
    void refreshStored(u32 warp_slot, u32 reg, const BdiEncoded &enc);

    /** Bump bank read counters for a read access at @p now. */
    void noteRead(const RegAccess &access, Cycle now);

    /** Per-bank access bookkeeping (scrub engine, collector reads). */
    void noteBankRead(u32 bank, Cycle now) { banks_.noteRead(bank, now); }
    void noteBankWrite(u32 bank, Cycle now)
    {
        banks_.noteWrite(bank, now);
    }

    /** Per-bank counters and valid bits (stats and tests). */
    u64 bankReads(u32 bank) const { return banks_.reads(bank); }
    u64 bankWrites(u32 bank) const { return banks_.writes(bank); }
    bool bankValid(u32 bank, u32 entry) const
    {
        return banks_.valid(bank, entry);
    }

    /** Banks currently not fully gated (for leakage integration). */
    u32 awakeBanks(Cycle) const
    {
        return banks_.numBanks() - banks_.offCount();
    }

    /** Per-cycle leakage census: fully-on and drowsy bank counts. */
    struct BankActivity
    {
        u32 active = 0;     ///< powered and recently accessed
        u32 drowsy = 0;     ///< powered, idle past the drowsy threshold
    };

    /** Leakage census at @p now (drowsy == 0 unless drowsyEnabled). */
    BankActivity bankActivity(Cycle now) const;

    /**
     * Closed-form leakage census over the uneventful span [from, to):
     * accumulates exactly what per-cycle bankActivity() sums would
     * have, used by event-driven idle skipping.
     */
    void activitySpan(Cycle from, Cycle to, u64 &active,
                      u64 &drowsy) const;

    /** Cumulative gated cycles of one bank (Fig 10). */
    u64 gatedCycles(u32 bank, Cycle now) const;

    u32 numBanks() const { return banks_.numBanks(); }

    /** Warp registers currently allocated (occupancy accounting). */
    u32 allocatedRegs() const { return allocatedRegs_; }

    /**
     * Count of (currently compressed, currently written) registers.
     * Maintained incrementally; O(1).
     */
    std::pair<u32, u32> compressedCensus() const
    {
        return {compressedCount_, writtenCount_};
    }

  private:
    struct RegState
    {
        RangeIndicator ind = RangeIndicator::Uncompressed;
        bool written = false;
        /** Register currently lives in a spare entry via the remap
         *  table (CompressRemap over a faulty stripe). */
        bool remapped = false;
    };

    struct SlotAlloc
    {
        u32 base = 0;
        u32 count = 0;
        bool active = false;
        /** Explicit id list, used only under DisableEntry where the
         *  healthy ids no longer form contiguous ranges. */
        std::vector<u32> ids;
    };

    u32 regId(u32 warp_slot, u32 reg) const;
    RegSlot slotOf(u32 id) const;
    u32 footprintBanks(u32 id) const;
    void releaseId(u32 id, Cycle now);

    u32
    rowOf(const RegSlot &s) const
    {
        return s.cluster * params_.entriesPerBank + s.entry;
    }

    RegFileParams params_;
    BankSet banks_;
    BankStorage store_;
    std::vector<RegState> regs_;
    std::vector<SlotAlloc> slots_;
    /** Free-range list over warp-register ids, kept sorted/coalesced. */
    std::vector<std::pair<u32, u32>> freeRanges_; // (base, count)
    /**
     * DisableEntry allocation mode: faulty stripes punch holes into the
     * id space, so slots draw from this sorted free-id list instead of
     * contiguous ranges. Empty (and unused) in every other mode, which
     * keeps the historical contiguous first-fit behaviour bit-exact.
     */
    bool idAlloc_ = false;
    std::vector<u32> freeIds_;
    std::unique_ptr<FaultMap> faults_;
    std::unique_ptr<SeuEngine> seu_;
    FaultPolicy faultPolicy_ = FaultPolicy::None;
    FaultStats faultStats_;
    u32 allocatedRegs_ = 0;
    u32 compressedCount_ = 0;
    u32 writtenCount_ = 0;
    /** Shared observability sink; nullptr = disabled (zero cost). */
    ObsRun *obs_ = nullptr;
    u16 smId_ = 0;
};

} // namespace warpcomp

#endif // WARPCOMP_REGFILE_REGFILE_HPP
