#include "fault/seu.hpp"

#include <cmath>

#include "common/log.hpp"
#include "regfile/regfile.hpp"

namespace warpcomp {

namespace {

constexpr u64 kGolden = 0x9E3779B97F4A7C15ull;

/** splitmix64 finalizer: the stateless per-cycle hash behind the flip
 *  stream. Statelessness (no generator object advancing) is what makes
 *  the stream a pure function of (seed, cycle). */
constexpr u64
hash64(u64 x)
{
    x += kGolden;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/** Uniform double in [0, 1) from the top 53 bits. */
constexpr double
unitDouble(u64 h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

} // namespace

std::string
seuSchemeName(SeuScheme scheme)
{
    switch (scheme) {
      case SeuScheme::Unprotected: return "Unprotected";
      case SeuScheme::Ecc: return "Ecc";
      case SeuScheme::Scrub: return "Scrub";
      case SeuScheme::EccScrub: return "EccScrub";
    }
    WC_PANIC("unknown SEU scheme " << static_cast<int>(scheme));
}

std::optional<SeuScheme>
seuSchemeFromName(const std::string &name)
{
    if (name == "Unprotected")
        return SeuScheme::Unprotected;
    if (name == "Ecc")
        return SeuScheme::Ecc;
    if (name == "Scrub")
        return SeuScheme::Scrub;
    if (name == "EccScrub")
        return SeuScheme::EccScrub;
    return std::nullopt;
}

void
SeuStats::merge(const SeuStats &other)
{
    flips += other.flips;
    liveHits += other.liveHits;
    maskedFlips += other.maskedFlips;
    hitsCompressed += other.hitsCompressed;
    corruptedReads += other.corruptedReads;
    corruptedLanes += other.corruptedLanes;
    amplifiedReads += other.amplifiedReads;
    eccCorrectedReads += other.eccCorrectedReads;
    detectedUncorrectable += other.detectedUncorrectable;
    scrubVisits += other.scrubVisits;
    scrubWrites += other.scrubWrites;
    scrubCorrected += other.scrubCorrected;
    eccCheckBitBytes += other.eccCheckBitBytes;
}

SeuEngine::SeuEngine(const RegisterFile &rf, const SeuParams &params)
    : rf_(rf), params_(params), seed_(params.seed),
      entries_(rf.params().entriesPerBank),
      clusters_(rf.params().numClusters()),
      numRows_(clusters_ * entries_),
      totalBits_(static_cast<u64>(numRows_) * kWarpRegBytes * 8),
      rate_(params.flipsPerCycle)
{
    WC_ASSERT(rate_ >= 0.0 && std::isfinite(rate_),
              "SEU rate " << rate_ << " must be finite and >= 0");
    WC_ASSERT(!params.scrubEnabled() || params.scrubInterval >= 1,
              "scrub interval must be >= 1 cycle");
    pending_.assign(numRows_, Pending{});
    if (params.eccEnabled()) {
        stats_.eccCheckBitBytes =
            static_cast<u64>(numRows_) * kCheckBitsPerEntry / 8;
    }
}

void
SeuEngine::sampleCycle(Cycle now)
{
    // One hash per cycle decides the flip count (integer part of the
    // rate plus a Bernoulli draw on the fraction); per-flip sub-hashes
    // pick uniform (row, bit) targets. A flip only becomes pending
    // when it lands under the live byte extent of its row — dead cells
    // and the tail beyond a compressed encoding absorb upsets
    // harmlessly, which is exactly the compression cross-section
    // shrinkage the sweep measures.
    const u64 h = hash64(seed_ ^ (now * kGolden));
    u32 n = static_cast<u32>(rate_);
    const double frac = rate_ - std::floor(rate_);
    if (frac > 0.0 && unitDouble(h) < frac)
        ++n;
    for (u32 i = 0; i < n; ++i) {
        const u64 t = hash64(h + kGolden * (i + 1));
        ++stats_.flips;
        const u64 cell = t % totalBits_;
        const u32 bit = static_cast<u32>(cell % (kWarpRegBytes * 8));
        const u32 row = static_cast<u32>(cell / (kWarpRegBytes * 8));
        const auto ext =
            rf_.entryExtent(row / entries_, row % entries_);
        if (ext.bytes == 0 || bit / 8 >= ext.bytes) {
            ++stats_.maskedFlips;
            continue;
        }
        ++stats_.liveHits;
        if (ext.compressed)
            ++stats_.hitsCompressed;
        Pending &p = pending_[row];
        if (p.count < kMaxTrackedFlips)
            p.pos[p.count] = static_cast<u16>(bit);
        ++p.count;
        ++pendingTotal_;
    }
}

SeuEngine::ReadResolution
SeuEngine::resolveRead(u32 warp_slot, u32 reg)
{
    ReadResolution res;
    if (pendingTotal_ == 0)
        return res;
    const RegSlot s = rf_.locate(warp_slot, reg);
    Pending &p = pending_[rowIndex(s.cluster, s.entry)];
    if (p.count == 0)
        return res;

    res.flips = p.count;
    res.tracked = p.count < kMaxTrackedFlips ? p.count : kMaxTrackedFlips;
    res.pos = p.pos;
    pendingTotal_ -= p.count;
    p = Pending{};

    if (params_.eccEnabled()) {
        // SEC-DED at the read port: one flip corrects silently, more
        // are detected. Either way nothing corrupt reaches the
        // collector — a detected-uncorrectable row is recovered
        // upstream (counted; the data-loss event is the metric).
        if (res.flips == 1)
            ++stats_.eccCorrectedReads;
        else
            ++stats_.detectedUncorrectable;
        return res;
    }
    res.corrupt = true;
    return res;
}

void
SeuEngine::noteCorruption(u32 lanes_changed, bool stored_compressed)
{
    if (lanes_changed == 0)
        return;
    ++stats_.corruptedReads;
    stats_.corruptedLanes += lanes_changed;
    if (stored_compressed)
        ++stats_.amplifiedReads;
}

void
SeuEngine::clearEntry(u32 cluster, u32 entry)
{
    Pending &p = pending_[rowIndex(cluster, entry)];
    if (p.count == 0)
        return;
    WC_ASSERT(pendingTotal_ >= p.count, "pending-flip underflow");
    pendingTotal_ -= p.count;
    p = Pending{};
}

SeuEngine::ScrubVisit
SeuEngine::scrubTick(Cycle now)
{
    ScrubVisit v;
    if (!params_.scrubEnabled())
        return v;
    if (now == 0 || now % params_.scrubInterval != 0)
        return v;

    // Round-robin over all rows, one per period. Invalid rows are
    // skipped for free: the engine sits next to the arbiter and sees
    // the valid bits, so it never burns bank energy on dead rows.
    const u32 row = scrubCursor_;
    scrubCursor_ = scrubCursor_ + 1 == numRows_ ? 0 : scrubCursor_ + 1;
    ++stats_.scrubVisits;

    const u32 cluster = row / entries_;
    const u32 entry = row % entries_;
    const auto ext = rf_.entryExtent(cluster, entry);
    if (ext.bytes == 0)
        return v;

    ++stats_.scrubWrites;
    Pending &p = pending_[row];
    if (p.count != 0) {
        if (params_.eccEnabled() && p.count > 1) {
            // The scrubber found a row ECC can no longer correct:
            // detected, data lost, but the event is visible.
            ++stats_.detectedUncorrectable;
        } else {
            stats_.scrubCorrected += p.count;
        }
        pendingTotal_ -= p.count;
        p = Pending{};
    }
    v.firstBank = cluster * kBanksPerWarpReg;
    v.banks = banksForBytes(ext.bytes);
    return v;
}

} // namespace warpcomp
