/**
 * @file
 * Transient soft-error (SEU) injection for the register banks: a
 * deterministic per-cycle bit-flip process over the live bytes of
 * allocated bank entries, plus the protection schemes evaluated
 * against it (SEC-DED ECC, background scrubbing, or nothing).
 *
 * Complements the permanent stuck-at model in fault.hpp: stuck cells
 * are a static property of the array, SEUs are events in time. Both
 * can be active at once. Determinism contract: the flip stream is a
 * pure function of (salted seed, cycle), never of host state, so runs
 * are byte-identical across thread counts and repetitions.
 */

#ifndef WARPCOMP_FAULT_SEU_HPP
#define WARPCOMP_FAULT_SEU_HPP

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace warpcomp {

class RegisterFile;

/** Protection scheme evaluated against the SEU process. */
enum class SeuScheme : u8 {
    /** Flips reach architectural state at the next read of the entry
     *  (silent data corruption; containment and the hang budget from
     *  the stuck-at subsystem apply). */
    Unprotected,
    /** SEC-DED per 128-byte row: single-bit flips are corrected on
     *  read, double-bit accumulation is detected (counted, data lost
     *  upstream) but never silently corrupts. */
    Ecc,
    /** A background engine walks valid entries at a fixed period and
     *  rewrites them, flushing accumulated flips before they are read.
     *  Idealized: the scrubber restores from a protected upstream
     *  copy, so a scrubbed entry is clean even without ECC. */
    Scrub,
    /** SEC-DED plus scrubbing: scrub-before-accumulation vs double-bit
     *  loss becomes measurable against the scrub period. */
    EccScrub
};

/** Human-readable scheme name. */
std::string seuSchemeName(SeuScheme scheme);

/** Inverse of seuSchemeName; nullopt on unknown names. */
std::optional<SeuScheme> seuSchemeFromName(const std::string &name);

/** SEU configuration, wired through SmParams/ExperimentConfig. */
struct SeuParams
{
    /** Expected bit flips per SM per cycle over the whole bank array
     *  (a Bernoulli-rounded Poisson intensity; 0 disables the layer
     *  entirely and is bit-identical to a build without it). */
    double flipsPerCycle = 0.0;
    SeuScheme scheme = SeuScheme::Unprotected;
    /**
     * Base seed of the flip stream. The GPU salts it per SM via
     * seuSeedForSm, so every SM draws an independent deterministic
     * stream and reruns are bit-reproducible.
     */
    u64 seed = 0x5E00C0DEull;
    /** Cycles between scrub-engine visits; each visit rewrites one
     *  bank-row stripe (Scrub/EccScrub only). */
    Cycle scrubInterval = 64;

    bool enabled() const { return flipsPerCycle > 0.0; }

    bool
    eccEnabled() const
    {
        return scheme == SeuScheme::Ecc || scheme == SeuScheme::EccScrub;
    }

    bool
    scrubEnabled() const
    {
        return scheme == SeuScheme::Scrub ||
            scheme == SeuScheme::EccScrub;
    }

    /** True when a flip can silently reach architectural state (the
     *  corruption-containment / hang-budget machinery must arm). */
    bool canCorrupt() const { return !eccEnabled(); }
};

/** Flip-stream seed of SM @p sm_index (salted from the base seed). */
constexpr u64
seuSeedForSm(u64 base, u32 sm_index)
{
    return mixSeed(base, sm_index);
}

/** SEU counters of one register file (merged over SMs). */
struct SeuStats
{
    u64 flips = 0;              ///< raw upset events drawn
    u64 liveHits = 0;           ///< flips landing on live stored bytes
    u64 maskedFlips = 0;        ///< flips landing on dead/invalid cells
    u64 hitsCompressed = 0;     ///< live hits inside a compressed row
    u64 corruptedReads = 0;     ///< reads that consumed flips with no
                                ///  protection and changed the value
    u64 corruptedLanes = 0;     ///< lanes whose architectural value
                                ///  changed across corrupted reads
    u64 amplifiedReads = 0;     ///< corrupted reads of compressed rows
                                ///  (decompression spreads the damage)
    u64 eccCorrectedReads = 0;  ///< single-bit corrections at read
    u64 detectedUncorrectable = 0; ///< SEC-DED multi-bit detections
                                   ///  (read or scrub; data lost but
                                   ///  never silent)
    u64 scrubVisits = 0;        ///< scrub-engine row visits
    u64 scrubWrites = 0;        ///< live rows rewritten by the scrubber
    u64 scrubCorrected = 0;     ///< pending flips flushed by scrubbing
    u64 eccCheckBitBytes = 0;   ///< modeled check-bit storage (census)

    void merge(const SeuStats &other);
};

/**
 * The per-SM SEU engine, owned by the RegisterFile. Flips accumulate
 * as pending events per bank-row stripe and resolve lazily: a read
 * consumes them (correcting, detecting, or corrupting per scheme), a
 * write or release discards them (the row is replaced wholesale), and
 * the scrub engine flushes them on its period.
 *
 * Everything is preallocated at construction; sampleCycle/resolveRead/
 * scrubTick perform no heap allocation (alloc-guard tested).
 */
class SeuEngine
{
  public:
    /** Flip positions tracked exactly per row; further flips on the
     *  same row still count (for ECC multi-bit detection) but only
     *  these many are applied bit-precisely on corruption. */
    static constexpr u32 kMaxTrackedFlips = 8;
    /** SEC-DED over one 1024-bit row: 11 syndrome bits + overall
     *  parity, stored as modeled capacity overhead. */
    static constexpr u32 kCheckBitsPerEntry = 12;

    /** Outcome of consuming a row's pending flips at a read. */
    struct ReadResolution
    {
        u32 flips = 0;      ///< pending flips consumed
        u32 tracked = 0;    ///< valid entries in pos[]
        /** Caller must XOR these into the stored image and commit the
         *  damage architecturally. False under ECC (corrected or
         *  detected upstream). */
        bool corrupt = false;
        /** Bit positions (byte*8 + bit) within the stored row image. */
        std::array<u16, kMaxTrackedFlips> pos{};
    };

    /** One scrub-engine visit; banks == 0 when no live row was
     *  rewritten this tick. */
    struct ScrubVisit
    {
        u32 firstBank = 0;
        u32 banks = 0;
    };

    SeuEngine(const RegisterFile &rf, const SeuParams &params);

    const SeuParams &params() const { return params_; }
    const SeuStats &stats() const { return stats_; }

    /** Fast path for the per-read hook: any flips outstanding at all? */
    bool hasPending() const { return pendingTotal_ != 0; }

    /** Draw this cycle's flips and record the live ones as pending.
     *  Pure function of (seed, now) — call exactly once per cycle. */
    void sampleCycle(Cycle now);

    /** Consume the pending flips of (warp_slot, reg), applying the
     *  configured scheme's read-side semantics. */
    ReadResolution resolveRead(u32 warp_slot, u32 reg);

    /** Account a corrupted read the caller committed to architectural
     *  state: @p lanes_changed lanes differ, @p stored_compressed when
     *  the damage went through decompression (amplification). */
    void noteCorruption(u32 lanes_changed, bool stored_compressed);

    /** Discard pending flips of a row: its content was replaced by a
     *  write or the register was released. */
    void clearEntry(u32 cluster, u32 entry);

    /** Advance the scrub engine at @p now; at the configured period it
     *  visits one row and, when live, rewrites it (the caller charges
     *  the returned bank traffic). */
    ScrubVisit scrubTick(Cycle now);

  private:
    struct Pending
    {
        std::array<u16, kMaxTrackedFlips> pos{};
        u32 count = 0;
    };

    u32 rowIndex(u32 cluster, u32 entry) const
    {
        return cluster * entries_ + entry;
    }

    const RegisterFile &rf_;
    SeuParams params_;
    u64 seed_;
    u32 entries_;       ///< rows per bank
    u32 clusters_;      ///< 8-bank stripes in the file
    u32 numRows_;       ///< clusters_ * entries_
    u64 totalBits_;     ///< numRows_ * 1024 target bits
    double rate_;
    u32 scrubCursor_ = 0;
    u64 pendingTotal_ = 0;
    std::vector<Pending> pending_;
    SeuStats stats_;
};

} // namespace warpcomp

#endif // WARPCOMP_FAULT_SEU_HPP
