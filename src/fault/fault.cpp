#include "fault/fault.hpp"

#include "common/log.hpp"

namespace warpcomp {

std::string
faultPolicyName(FaultPolicy policy)
{
    switch (policy) {
      case FaultPolicy::None: return "None";
      case FaultPolicy::DisableEntry: return "DisableEntry";
      case FaultPolicy::CompressRemap: return "CompressRemap";
    }
    WC_PANIC("unknown fault policy "
             << static_cast<int>(policy));
}

std::optional<FaultPolicy>
faultPolicyFromName(const std::string &name)
{
    if (name == "None")
        return FaultPolicy::None;
    if (name == "DisableEntry")
        return FaultPolicy::DisableEntry;
    if (name == "CompressRemap")
        return FaultPolicy::CompressRemap;
    return std::nullopt;
}

void
FaultStats::merge(const FaultStats &other)
{
    totalRegs += other.totalRegs;
    usableRegs += other.usableRegs;
    disabledRegs += other.disabledRegs;
    faultyCells += other.faultyCells;
    toleratedWrites += other.toleratedWrites;
    remapWrites += other.remapWrites;
    remapReads += other.remapReads;
    corruptedWrites += other.corruptedWrites;
    unrecoverableAccesses += other.unrecoverableAccesses;
}

FaultMap::FaultMap(u32 num_banks, u32 entries_per_bank, double ber,
                   u64 seed)
    : numBanks_(num_banks), entries_(entries_per_bank)
{
    WC_ASSERT(num_banks > 0 && entries_per_bank > 0,
              "degenerate fault map geometry");
    WC_ASSERT(ber >= 0.0 && ber <= 1.0,
              "bit-error rate " << ber << " outside [0, 1]");
    WC_ASSERT(num_banks % kBanksPerWarpReg == 0,
              "bank count must be a multiple of " << kBanksPerWarpReg);

    const u32 bits_per_entry = kBankEntryBytes * 8;
    const std::size_t n_entries =
        static_cast<std::size_t>(num_banks) * entries_per_bank;
    stuck0_.assign(n_entries * 2, 0);
    stuck1_.assign(n_entries * 2, 0);

    // One bernoulli draw per cell, in (bank, entry, bit) order, from a
    // generator owned by this map: the layout is a pure function of
    // (geometry, ber, seed) regardless of who builds it or when.
    Rng rng(seed);
    for (u32 bank = 0; bank < num_banks; ++bank) {
        for (u32 entry = 0; entry < entries_per_bank; ++entry) {
            const std::size_t base =
                (static_cast<std::size_t>(bank) * entries_ + entry) * 2;
            for (u32 bit = 0; bit < bits_per_entry; ++bit) {
                if (!rng.nextBool(ber))
                    continue;
                ++faultyCells_;
                const u64 mask = u64{1} << (bit % 64);
                if ((rng.next() & 1) != 0)
                    stuck1_[base + bit / 64] |= mask;
                else
                    stuck0_[base + bit / 64] |= mask;
            }
        }
    }

    // Cache the healthy prefix of every warp-register stripe.
    const u32 stripes = num_banks / kBanksPerWarpReg;
    healthyPrefix_.assign(
        static_cast<std::size_t>(stripes) * entries_per_bank, 0);
    for (u32 s = 0; s < stripes; ++s) {
        for (u32 entry = 0; entry < entries_per_bank; ++entry) {
            u32 prefix = 0;
            while (prefix < kWarpRegBytes) {
                const u32 bank =
                    s * kBanksPerWarpReg + prefix / kBankEntryBytes;
                const u32 byte = prefix % kBankEntryBytes;
                if ((maskByte(stuck0_, bank, entry, byte) |
                     maskByte(stuck1_, bank, entry, byte)) != 0)
                    break;
                ++prefix;
            }
            healthyPrefix_[static_cast<std::size_t>(s) * entries_ +
                           entry] = static_cast<u8>(prefix);
        }
    }
}

u8
FaultMap::maskByte(const std::vector<u64> &masks, u32 bank, u32 entry,
                   u32 byte_in_entry) const
{
    const std::size_t base =
        (static_cast<std::size_t>(bank) * entries_ + entry) * 2;
    const u64 word = masks[base + byte_in_entry / 8];
    return static_cast<u8>(word >> ((byte_in_entry % 8) * 8));
}

bool
FaultMap::corrupt(u32 first_bank, u32 entry, u8 *bytes, u32 n) const
{
    WC_ASSERT(entry < entries_, "fault map entry " << entry
              << " out of range");
    WC_ASSERT(first_bank + (n + kBankEntryBytes - 1) / kBankEntryBytes
              <= numBanks_,
              "corrupt span of " << n << " bytes from bank "
              << first_bank << " leaves the register file");
    bool changed = false;
    for (u32 k = 0; k < n; ++k) {
        const u32 bank = first_bank + k / kBankEntryBytes;
        const u32 byte = k % kBankEntryBytes;
        const u8 s0 = maskByte(stuck0_, bank, entry, byte);
        const u8 s1 = maskByte(stuck1_, bank, entry, byte);
        const u8 out = static_cast<u8>((bytes[k] & ~s0) | s1);
        changed = changed || out != bytes[k];
        bytes[k] = out;
    }
    return changed;
}

u32
FaultMap::healthyPrefixBytes(u32 first_bank, u32 entry) const
{
    WC_ASSERT(first_bank % kBanksPerWarpReg == 0,
              "stripe must start on a cluster boundary, not bank "
              << first_bank);
    WC_ASSERT(first_bank < numBanks_ && entry < entries_,
              "stripe (" << first_bank << ", " << entry
              << ") out of range");
    const u32 stripe = first_bank / kBanksPerWarpReg;
    return healthyPrefix_[static_cast<std::size_t>(stripe) * entries_ +
                          entry];
}

} // namespace warpcomp
