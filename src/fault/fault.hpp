/**
 * @file
 * Register-file fault injection: a deterministic, seeded map of
 * permanent stuck-at-0/1 bit-cell faults over the SRAM banks, and the
 * tolerance policies the simulator evaluates against it.
 *
 * The fault model follows the RRCD line of work (arXiv:2105.03859) and
 * the low-Vdd motivation of "A GPU Register File using Static Data
 * Compression" (arXiv:2006.05693): each bit-cell independently fails
 * with probability `ber`, and a failed cell is stuck at 0 or 1 with
 * equal probability. Faults are permanent and stateless — reads return
 * whatever the stuck cells force, no matter what was written.
 */

#ifndef WARPCOMP_FAULT_FAULT_HPP
#define WARPCOMP_FAULT_FAULT_HPP

#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace warpcomp {

/**
 * How the register file copes with faulty bank entries (Sec. "fault
 * tolerance" of DESIGN.md).
 */
enum class FaultPolicy : u8 {
    /** No mitigation: writes land on stuck cells and silently corrupt
     *  the architectural value (the differential tests must catch the
     *  divergence). */
    None,
    /** Any warp-register stripe containing a faulty cell is removed
     *  from the allocator, trading capacity/occupancy for safety. */
    DisableEntry,
    /** RRCD-style: a register may live in a faulty stripe iff its
     *  BDI-compressed form fits entirely in the leading healthy bytes;
     *  otherwise the write is redirected to a healthy spare entry
     *  through a remap table. */
    CompressRemap
};

/** Human-readable policy name. */
std::string faultPolicyName(FaultPolicy policy);

/** Inverse of faultPolicyName; nullopt on unknown names. */
std::optional<FaultPolicy> faultPolicyFromName(const std::string &name);

/** Fault-injection configuration, wired through SmParams/GpuParams. */
struct FaultParams
{
    /** Per-bit-cell probability of a permanent stuck-at fault. */
    double ber = 0.0;
    FaultPolicy policy = FaultPolicy::None;
    /**
     * Base seed of the fault map. The GPU salts it per SM via
     * faultSeedForSm, so every SM draws an independent deterministic
     * map and reruns are bit-reproducible.
     */
    u64 seed = 0xFA017C0DEull;
    /**
     * Cycle budget under policy None: silent corruption can hit loop
     * counters and livelock a kernel, so a run exceeding this many
     * cycles stops and reports RunResult::hung instead of tripping the
     * deadlock guard. Generous — the whole suite finishes in well
     * under 1M cycles per workload at scale 1. Ignored (the hard
     * guard stays) for the policies that guarantee no corruption.
     */
    Cycle hangCycles = 10'000'000;

    /** True when a fault map must be built at all. */
    bool enabled() const { return ber > 0.0; }
};

/** Fault map seed of SM @p sm_index (salted from the base seed). */
constexpr u64
faultSeedForSm(u64 base, u32 sm_index)
{
    return mixSeed(base, sm_index);
}

/** Fault-tolerance counters of one register file (merged over SMs). */
struct FaultStats
{
    u64 totalRegs = 0;          ///< warp-register stripes in the file
    u64 usableRegs = 0;         ///< stripes usable under the policy
    u64 disabledRegs = 0;       ///< stripes removed (DisableEntry)
    u64 faultyCells = 0;        ///< stuck bit-cells in the map
    u64 toleratedWrites = 0;    ///< compressed writes absorbed by the
                                ///  healthy prefix of a faulty stripe
    u64 remapWrites = 0;        ///< writes redirected to a spare entry
    u64 remapReads = 0;         ///< reads through the remap table
    u64 corruptedWrites = 0;    ///< writes whose stored image changed
                                ///  (policy None only)
    u64 unrecoverableAccesses = 0; ///< memory accesses squashed after
                                   ///  corruption produced a wild
                                   ///  address (policy None only)

    void merge(const FaultStats &other);
};

/**
 * Immutable per-register-file map of stuck-at faults. One instance
 * covers `num_banks x entries` 128-bit bank entries; generation is a
 * pure function of (geometry, ber, seed).
 */
class FaultMap
{
  public:
    /** Smallest BDI encoding (<4,0> = 4 bytes): a stripe whose healthy
     *  prefix is at least this can still host compressed registers. */
    static constexpr u32 kMinCompressedBytes = 4;

    FaultMap(u32 num_banks, u32 entries_per_bank, double ber, u64 seed);

    u32 numBanks() const { return numBanks_; }
    u32 entriesPerBank() const { return entries_; }
    u64 faultyCells() const { return faultyCells_; }

    /**
     * Apply the stuck-at cells under bytes [0, n) of the data stored at
     * row @p entry starting in bank @p first_bank (byte k lives in bank
     * first_bank + k/16). Returns true when any byte changed.
     */
    bool corrupt(u32 first_bank, u32 entry, u8 *bytes, u32 n) const;

    /**
     * Healthy leading bytes of the 8-bank warp-register stripe whose
     * first bank is @p first_bank: the number of bytes before the first
     * faulty cell, kWarpRegBytes when the stripe is fault-free.
     */
    u32 healthyPrefixBytes(u32 first_bank, u32 entry) const;

    /** True when the stripe contains at least one faulty cell. */
    bool
    stripeFaulty(u32 first_bank, u32 entry) const
    {
        return healthyPrefixBytes(first_bank, entry) < kWarpRegBytes;
    }

  private:
    /** Stuck-at mask byte @p byte_in_entry of (bank, entry). */
    u8 maskByte(const std::vector<u64> &masks, u32 bank, u32 entry,
                u32 byte_in_entry) const;

    u32 numBanks_;
    u32 entries_;
    u64 faultyCells_ = 0;
    /** Two u64 words per (bank, entry): 128 bits of stuck-at-0 cells
     *  (bit set: cell reads 0) and stuck-at-1 cells respectively. */
    std::vector<u64> stuck0_;
    std::vector<u64> stuck1_;
    /** Cached healthy prefix per (stripe, entry); values 0..128. */
    std::vector<u8> healthyPrefix_;
};

} // namespace warpcomp

#endif // WARPCOMP_FAULT_FAULT_HPP
