/**
 * @file
 * Plain-text table formatting shared by the bench harnesses so every
 * figure prints in the same aligned, greppable style.
 */

#ifndef WARPCOMP_POWER_REPORT_HPP
#define WARPCOMP_POWER_REPORT_HPP

#include <ostream>
#include <string>
#include <vector>

namespace warpcomp {

/**
 * Column-aligned text table. First column left-aligned (row labels),
 * remaining columns right-aligned.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; cell count must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: label + doubles formatted to @p precision. */
    void addRow(const std::string &label, const std::vector<double> &values,
                int precision = 3);

    void print(std::ostream &os) const;

    /** Machine-readable CSV (quoting cells that contain commas). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision. */
std::string fmtDouble(double v, int precision = 3);

/** Format a ratio as a percentage string ("12.3%"). */
std::string fmtPercent(double fraction, int precision = 1);

} // namespace warpcomp

#endif // WARPCOMP_POWER_REPORT_HPP
