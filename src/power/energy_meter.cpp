#include "power/energy_meter.hpp"

namespace warpcomp {

EnergyMeter::EnergyMeter(const EnergyParams &params, u32 num_compressors,
                         u32 num_decompressors)
    : params_(params), numCompressors_(num_compressors),
      numDecompressors_(num_decompressors)
{
}

void
EnergyMeter::merge(const EnergyMeter &other)
{
    bankReads_ += other.bankReads_;
    bankWrites_ += other.bankWrites_;
    rfcAccesses_ += other.rfcAccesses_;
    remapAccesses_ += other.remapAccesses_;
    eccEncodes_ += other.eccEncodes_;
    eccDecodes_ += other.eccDecodes_;
    rfcPresent_ = rfcPresent_ || other.rfcPresent_;
    eccPresent_ = eccPresent_ || other.eccPresent_;
    compActs_ += other.compActs_;
    decompActs_ += other.decompActs_;
    awakeBankCycles_ += other.awakeBankCycles_;
    drowsyBankCycles_ += other.drowsyBankCycles_;
    cycles_ += other.cycles_;
}

EnergyBreakdown
EnergyMeter::breakdown() const
{
    return breakdownWith(params_);
}

EnergyBreakdown
EnergyMeter::breakdownWith(const EnergyParams &p) const
{
    EnergyBreakdown e;

    // SEC-DED widens every bank row by its check bits: array access
    // and leakage energy scale with the extra storage. The wires to
    // the collector carry only data bits (syndrome logic sits at the
    // bank port), so wire energy is unscaled.
    const double bank_scale =
        eccPresent_ ? 1.0 + p.eccStorageOverhead : 1.0;

    const double accesses = static_cast<double>(bankAccesses());
    e.bankDynamicPj = accesses * p.bankAccessPj * p.accessScale *
        bank_scale;
    e.wireDynamicPj = accesses * p.wirePjPerBankTransfer() * p.accessScale;

    e.rfcDynamicPj = static_cast<double>(rfcAccesses_) * p.rfcAccessPj;
    e.faultRemapPj = static_cast<double>(remapAccesses_) * p.remapTablePj;
    e.eccPj = static_cast<double>(eccEncodes_) * p.eccEncodePj +
        static_cast<double>(eccDecodes_) * p.eccDecodePj;

    e.compressionPj = static_cast<double>(compActs_) * p.compPj *
        p.compDecompScale;
    e.decompressionPj = static_cast<double>(decompActs_) * p.decompPj *
        p.compDecompScale;

    // mW x s = mJ; x 1e9 converts to pJ.
    const double cycle_s = p.cycleSeconds();
    e.bankLeakagePj = static_cast<double>(awakeBankCycles_) * cycle_s *
        p.bankLeakMw * 1e9;
    e.bankLeakagePj += static_cast<double>(drowsyBankCycles_) * cycle_s *
        p.bankLeakMw * p.drowsyLeakFraction * 1e9;
    e.bankLeakagePj *= bank_scale;
    double unit_leak_mw =
        static_cast<double>(numCompressors_) * p.compLeakMw +
        static_cast<double>(numDecompressors_) * p.decompLeakMw;
    if (rfcPresent_)
        unit_leak_mw += p.rfcLeakMw;
    e.unitLeakagePj = static_cast<double>(cycles_) * cycle_s *
        unit_leak_mw * 1e9;

    return e;
}

} // namespace warpcomp
