#include "power/report.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/log.hpp"

namespace warpcomp {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    WC_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    WC_ASSERT(cells.size() == headers_.size(),
              "row has " << cells.size() << " cells, expected "
              << headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::addRow(const std::string &label, const std::vector<double> &values,
                  int precision)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(fmtDouble(v, precision));
    addRow(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c == 0) {
                os << std::left << std::setw(static_cast<int>(width[c]))
                   << cells[c];
            } else {
                os << "  " << std::right
                   << std::setw(static_cast<int>(width[c])) << cells[c];
            }
        }
        os << '\n';
    };

    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c == 0 ? 0 : 2);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c != 0)
                os << ',';
            if (cells[c].find(',') != std::string::npos)
                os << '"' << cells[c] << '"';
            else
                os << cells[c];
        }
        os << '\n';
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
fmtDouble(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

std::string
fmtPercent(double fraction, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << fraction * 100.0
       << '%';
    return ss.str();
}

} // namespace warpcomp
