/**
 * @file
 * Event-based energy accounting for one SM's register file subsystem.
 * The simulator reports raw events (bank accesses, unit activations,
 * awake-bank cycles); the meter turns them into the Fig 9 breakdown.
 */

#ifndef WARPCOMP_POWER_ENERGY_METER_HPP
#define WARPCOMP_POWER_ENERGY_METER_HPP

#include "common/types.hpp"
#include "power/constants.hpp"

namespace warpcomp {

/** Accumulates register-file energy events for one SM. */
class EnergyMeter
{
  public:
    /**
     * @param params energy constants / scaling knobs
     * @param num_compressors compressor units present (0 for baseline)
     * @param num_decompressors decompressor units present
     */
    EnergyMeter(const EnergyParams &params, u32 num_compressors,
                u32 num_decompressors);

    void addBankReads(u64 n) { bankReads_ += n; }
    void addBankWrites(u64 n) { bankWrites_ += n; }
    /** Register-file-cache hits/fills (comparator mode). */
    void addRfcAccesses(u64 n) { rfcAccesses_ += n; }
    /** Mark the RFC structure present so its leakage is charged. */
    void setRfcPresent(bool present) { rfcPresent_ = present; }
    /** Fault-remap table lookups/updates (CompressRemap policy). */
    void addRemapAccesses(u64 n) { remapAccesses_ += n; }
    /** SEC-DED check-bit encodes (one per protected row write). */
    void addEccEncodes(u64 n) { eccEncodes_ += n; }
    /** SEC-DED syndrome decodes (one per protected row read). */
    void addEccDecodes(u64 n) { eccDecodes_ += n; }
    /** Mark SEC-DED present: check-bit storage widens the banks, so
     *  bank access and leakage energy scale by eccStorageOverhead. */
    void setEccPresent(bool present) { eccPresent_ = present; }
    void addCompActivations(u64 n) { compActs_ += n; }
    void addDecompActivations(u64 n) { decompActs_ += n; }
    /** Call once per simulated cycle with the number of non-gated banks. */
    void addAwakeBankCycles(u64 n) { awakeBankCycles_ += n; }
    /** Banks in the state-retentive drowsy mode this cycle. */
    void addDrowsyBankCycles(u64 n) { drowsyBankCycles_ += n; }
    void addCycles(u64 n) { cycles_ += n; }

    u64 bankReads() const { return bankReads_; }
    u64 bankWrites() const { return bankWrites_; }
    u64 bankAccesses() const { return bankReads_ + bankWrites_; }
    u64 rfcAccesses() const { return rfcAccesses_; }
    u64 remapAccesses() const { return remapAccesses_; }
    u64 eccEncodes() const { return eccEncodes_; }
    u64 eccDecodes() const { return eccDecodes_; }
    bool eccPresent() const { return eccPresent_; }
    u64 compActivations() const { return compActs_; }
    u64 decompActivations() const { return decompActs_; }
    u64 awakeBankCycles() const { return awakeBankCycles_; }
    u64 drowsyBankCycles() const { return drowsyBankCycles_; }
    u64 cycles() const { return cycles_; }

    const EnergyParams &params() const { return params_; }

    /** Merge another meter's events (multi-SM aggregation). */
    void merge(const EnergyMeter &other);

    /** Total energy consumed, broken down as in Fig 9. */
    EnergyBreakdown breakdown() const;

    /**
     * Recompute the breakdown under different energy constants without
     * re-simulating (the Sec. 6.7-6.8 sweeps are post-processing over
     * the same event counts).
     */
    EnergyBreakdown breakdownWith(const EnergyParams &params) const;

  private:
    EnergyParams params_;
    u32 numCompressors_;
    u32 numDecompressors_;
    u64 bankReads_ = 0;
    u64 bankWrites_ = 0;
    u64 rfcAccesses_ = 0;
    u64 remapAccesses_ = 0;
    u64 eccEncodes_ = 0;
    u64 eccDecodes_ = 0;
    bool rfcPresent_ = false;
    bool eccPresent_ = false;
    u64 compActs_ = 0;
    u64 decompActs_ = 0;
    u64 awakeBankCycles_ = 0;
    u64 drowsyBankCycles_ = 0;
    u64 cycles_ = 0;
};

} // namespace warpcomp

#endif // WARPCOMP_POWER_ENERGY_METER_HPP
