/**
 * @file
 * Energy and power constants from Table 3 of the paper (45 nm, 1.0 V),
 * plus the scaling knobs the Sec. 6.7/6.8 design-space exploration
 * sweeps. All energies in picojoules, powers in milliwatts.
 */

#ifndef WARPCOMP_POWER_CONSTANTS_HPP
#define WARPCOMP_POWER_CONSTANTS_HPP

#include "common/types.hpp"

namespace warpcomp {

/** Table 3 defaults and exploration multipliers. */
struct EnergyParams
{
    /** SM clock (Table 2): 1.4 GHz. */
    double clockGhz = 1.4;

    /** SRAM access energy per bank access (pJ). */
    double bankAccessPj = 7.0;
    /** 128-bit wire transfer energy per mm at 100% activity (pJ).
     *  300 fF/mm x 1 V^2 x 128 wires = 38.4 pJ/mm. */
    double wirePjPerMmFull = 38.4;
    /** Wire distance register bank -> operand collector (mm). */
    double wireMm = 1.0;
    /** Default wire activity: Table 3's 9.6 pJ / 38.4 pJ = 25%. */
    double wireActivity = 0.25;
    /** Bank leakage power (mW). */
    double bankLeakMw = 5.8;
    /** Drowsy-state leakage as a fraction of full bank leakage (the
     *  related-work drowsy register file comparator). */
    double drowsyLeakFraction = 0.1;
    /** Compression unit activation energy (pJ). */
    double compPj = 23.0;
    /** Decompression unit activation energy (pJ). */
    double decompPj = 21.0;
    /** Compression unit leakage (mW, per unit). */
    double compLeakMw = 0.12;
    /** Decompression unit leakage (mW, per unit). */
    double decompLeakMw = 0.08;
    /** Register-file-cache access energy (pJ per 128-B operand; small
     *  per-warp RAM close to the operand collector). */
    double rfcAccessPj = 1.2;
    /** Register-file-cache leakage when present (mW, whole structure). */
    double rfcLeakMw = 0.3;
    /** Fault-remap table lookup/update energy (pJ per remapped access;
     *  a small CAM/RAM beside the bank arbiter, RRCD-style). */
    double remapTablePj = 0.9;
    /** SEC-DED check-bit encode energy per row write (pJ; XOR tree
     *  over 1024 data bits producing 12 check bits). */
    double eccEncodePj = 1.4;
    /** SEC-DED syndrome decode + correct energy per row read (pJ). */
    double eccDecodePj = 1.1;
    /** Check-bit storage overhead of the SEC-DED baseline: 12 extra
     *  bits per 1024-bit row, scaling bank access and leakage energy
     *  when ECC is present (the array is that much wider). */
    double eccStorageOverhead = 12.0 / 1024.0;

    /** Sec. 6.7 sweep: scale comp/decomp activation energy. */
    double compDecompScale = 1.0;
    /** Sec. 6.7 sweep: scale register bank access energy (incl. wire). */
    double accessScale = 1.0;

    /** Energy of one 128-bit wire transfer over wireMm at the configured
     *  activity (pJ); 9.6 pJ at defaults. */
    double
    wirePjPerBankTransfer() const
    {
        return wirePjPerMmFull * wireMm * wireActivity;
    }

    /** Seconds per SM cycle. */
    double cycleSeconds() const { return 1e-9 / clockGhz; }
};

/** Energy totals of one simulation, in picojoules. */
struct EnergyBreakdown
{
    double bankDynamicPj = 0;   ///< SRAM array access energy
    double wireDynamicPj = 0;   ///< bank <-> collector wire energy
    double rfcDynamicPj = 0;    ///< register-file-cache accesses
    double faultRemapPj = 0;    ///< fault-remap table traffic
    double eccPj = 0;           ///< SEC-DED encode/decode logic
    double compressionPj = 0;   ///< compressor activations
    double decompressionPj = 0; ///< decompressor activations
    double bankLeakagePj = 0;   ///< non-gated bank leakage
    double unitLeakagePj = 0;   ///< comp/decomp + RFC leakage

    double
    dynamicPj() const
    {
        return bankDynamicPj + wireDynamicPj + rfcDynamicPj +
            faultRemapPj + eccPj;
    }

    double
    leakagePj() const
    {
        return bankLeakagePj + unitLeakagePj;
    }

    double
    totalPj() const
    {
        return dynamicPj() + compressionPj + decompressionPj + leakagePj();
    }
};

} // namespace warpcomp

#endif // WARPCOMP_POWER_CONSTANTS_HPP
