// Intentionally (almost) empty: EnergyParams/EnergyBreakdown are
// header-only aggregates; this TU anchors the module in the build.
#include "power/constants.hpp"

namespace warpcomp {

static_assert(sizeof(EnergyParams) > 0);

} // namespace warpcomp
